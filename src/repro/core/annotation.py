"""Annotating the PST with trit vectors — Section 3.1.

Each broker annotates every node of its Parallel Search Tree with a trit
vector of length equal to its number of (virtual) links.  Leaves get Yes at
the positions of links through which one of the leaf's subscribers is
reached, No elsewhere.  Annotations propagate to the root with:

    node = ParallelCombine(
        AlternativeCombine(value children...,
                           implicit all-No unless the value branches cover
                           the attribute's whole domain),
        *-child (all-No when absent))

The *implicit all-No alternative* represents event values for which no value
branch exists: such an event follows only the ``*``-branch, so the value
branches alone must not promote a link to Yes.  When the tree knows the
attribute's finite domain (the paper's simulations fix e.g. 5 values per
attribute) and the value branches cover it, the implicit alternative is
dropped — this is what lets annotations reach Yes above fully-enumerated
levels and is exactly how the paper's Figure 5 example combines.

Range branches are handled conservatively (the paper restricts the described
algorithm to equality tests and don't-cares, deferring ranges to a "parallel
search graph"): a range child joins the Alternative Combine and the implicit
all-No is always kept, so range branches can produce Maybe but never an
unsound Yes or No.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import RoutingError
from repro.matching.pst import ParallelSearchTree, PSTNode
from repro.matching.predicates import Subscription
from repro.core.trits import (
    TritVector,
    alternative_combine_all,
    parallel_combine_all,
)

#: Maps a subscription to the broker-local (virtual) link position through
#: which its subscriber is best reached.  A negative position means the
#: subscriber is currently unreachable (cut off by a failure): the
#: subscription contributes no link, so no annotation bit lights for it.
LinkOfSubscriber = Callable[[Subscription], int]


class TreeAnnotation:
    """The trit-vector annotation of one PST for one broker.

    Annotations are keyed by PST node id.  The annotation snapshot is valid
    for the tree structure at :meth:`annotate` time; after subscriptions
    change, call :meth:`annotate` again (the router tracks dirtiness).
    """

    def __init__(self, num_links: int, link_of_subscriber: LinkOfSubscriber) -> None:
        if num_links < 0:
            raise RoutingError("num_links must be >= 0")
        self.num_links = num_links
        self._link_of_subscriber = link_of_subscriber
        self._by_node: Dict[int, TritVector] = {}

    def annotate(self, tree: ParallelSearchTree) -> TritVector:
        """(Re)compute annotations bottom-up; returns the root's vector."""
        self._by_node.clear()
        return self._annotate_node(tree, tree.root)

    def update_path(self, tree: ParallelSearchTree, predicate) -> TritVector:
        """Incrementally re-annotate after one subscription changed.

        A node's annotation depends only on its descendants, so inserting or
        removing a subscription can only change annotations on the root-to-
        leaf path its predicate selects.  This walks that path in the
        *current* tree (which already reflects the change), recomputes those
        nodes bottom-up — descending into a subtree only when it has no
        cached annotation (freshly created by a re-materializing insert) —
        and leaves everything else untouched.

        Returns the new root vector.  Stale entries for pruned nodes are
        left in the map; they are unreachable and harmless, and
        :meth:`annotate` clears them on the next full pass.
        """
        tests = [
            predicate.tests[tree.schema.position_of(name)]
            for name in tree.attribute_order
        ]
        path: List[PSTNode] = []
        node: Optional[PSTNode] = tree.root
        while node is not None:
            path.append(node)
            if node.is_leaf:
                break
            node = self._child_for_test(node, tests[node.attribute_position])
        for stale in path:
            self._by_node.pop(stale.node_id, None)
        # _annotate_node recurses only into children without annotations...
        # it recomputes everything below.  To keep the incremental cost at
        # O(path x fanout) rather than O(subtree), recompute bottom-up using
        # cached child vectors.
        for node in reversed(path):
            if node.is_leaf:
                self._by_node[node.node_id] = self._leaf_vector(node)
            else:
                self._by_node[node.node_id] = self._combine_children(tree, node)
        return self._by_node[tree.root.node_id]

    def _child_for_test(self, node: PSTNode, test) -> Optional[PSTNode]:
        if test.is_dont_care:
            return node.star_child
        from repro.matching.predicates import EqualityTest

        if isinstance(test, EqualityTest):
            return node.value_branches.get(test.value)
        for branch_test, child in node.range_branches:
            if branch_test == test:
                return child
        return None

    def _cached_or_computed(self, tree: ParallelSearchTree, child: PSTNode) -> TritVector:
        cached = self._by_node.get(child.node_id)
        if cached is not None:
            return cached
        return self._annotate_node(tree, child)

    def vector_for(self, node: PSTNode) -> TritVector:
        """The annotation of ``node`` (must have been annotated)."""
        try:
            return self._by_node[node.node_id]
        except KeyError:
            raise RoutingError(
                f"node #{node.node_id} has no annotation — tree changed since annotate()?"
            ) from None

    def _annotate_node(self, tree: ParallelSearchTree, node: PSTNode) -> TritVector:
        if node.is_leaf:
            vector = self._leaf_vector(node)
        else:
            vector = self._internal_vector(tree, node)
        self._by_node[node.node_id] = vector
        return vector

    def _leaf_vector(self, node: PSTNode) -> TritVector:
        positions = set()
        for subscription in node.subscriptions:
            position = self._link_of_subscriber(subscription)
            if position < 0:
                continue  # subscriber unreachable — no link to light
            if position >= self.num_links:
                raise RoutingError(
                    f"link position {position} out of range for {subscription!r}"
                )
            positions.add(position)
        return TritVector.with_yes_at(self.num_links, positions)

    def _internal_vector(self, tree: ParallelSearchTree, node: PSTNode) -> TritVector:
        for child in node.children():
            self._annotate_node(tree, child)
        return self._combine_children(tree, node)

    def _combine_children(self, tree: ParallelSearchTree, node: PSTNode) -> TritVector:
        """Combine the (cached or freshly computed) child vectors per the
        Section 3.1 recipe; see the module docstring.

        With a declared (exhaustive) domain the combination is computed
        *per domain value* — Alternative Combine over the exact outcome of
        each possible event value, where an outcome Parallel-Combines every
        branch that value satisfies (its equality branch, every accepting
        range branch, and the ``*``-branch).  This is exactly the paper's
        recipe for equality-only trees (by the distributivity of Parallel
        over Alternative Combine) and extends it precisely to range tests —
        the case the paper defers to a "parallel search graph".
        """
        assert node.attribute_position is not None
        star = (
            self._cached_or_computed(tree, node.star_child)
            if node.star_child is not None
            else TritVector.all_no(self.num_links)
        )
        domain = tree.domain_of(node.attribute_position)
        if domain is not None:
            outcomes: List[TritVector] = []
            for value in sorted(domain, key=repr):
                parts: List[TritVector] = []
                value_child = node.value_branches.get(value)
                if value_child is not None:
                    parts.append(self._cached_or_computed(tree, value_child))
                for test, range_child in node.range_branches:
                    if test.evaluate(value):
                        parts.append(self._cached_or_computed(tree, range_child))
                parts.append(star)
                outcomes.append(parallel_combine_all(parts, self.num_links))
            return alternative_combine_all(outcomes, self.num_links)
        # Open domain: the conservative recipe — value/range children
        # Alternative-Combined with an implicit all-No for unlisted values,
        # then Parallel-Combined with the *-branch.  Sound (never a false
        # Yes or No) but ranges and unlisted values can only yield Maybe.
        alternatives: List[TritVector] = [
            self._cached_or_computed(tree, child)
            for child in node.value_branches.values()
        ]
        for _test, child in node.range_branches:
            alternatives.append(self._cached_or_computed(tree, child))
        alternatives.append(TritVector.all_no(self.num_links))
        combined = alternative_combine_all(alternatives, self.num_links)
        return combined.parallel(star)

    def __repr__(self) -> str:
        return f"TreeAnnotation({self.num_links} links, {len(self._by_node)} nodes)"
