"""Virtual links and initialization masks — Section 3.2 and footnote 1.

For each spanning tree, a broker needs a per-link *initialization mask*:
Maybe on links leading to downstream destinations, No elsewhere.  Matching
then refines every Maybe to Yes or No.

A single physical link can serve destinations that are downstream on some
spanning trees and not on others (lateral links make this real in the
Figure 6 topology).  Annotating per *physical* link would then conflate
subscribers that this tree should reach through the link with subscribers it
must not — producing spurious forwards or duplicate deliveries.  The paper's
footnote 1 resolves this by "splitting the link into two or more virtual
links"; this module implements that splitting in general form:

Destinations routed through the same physical link are partitioned by their
*downstream signature* — the set of spanning trees under which they are
downstream of this broker.  Each partition class is one **virtual link**, and
trit vectors (annotations, masks) have one position per virtual link.  In a
pure tree topology every physical link has exactly one class, so virtual
links collapse to the paper's simple one-trit-per-link scheme.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Tuple

from repro.errors import RoutingError
from repro.core.trits import M, N, TritVector
from repro.network.paths import RoutingTable
from repro.network.spanning import SpanningTree
from repro.network.topology import Topology


class VirtualLink:
    """One trit position of a broker: a physical neighbor link plus the
    downstream signature shared by the destinations it carries."""

    __slots__ = ("position", "neighbor", "downstream_roots", "destinations")

    def __init__(
        self,
        position: int,
        neighbor: str,
        downstream_roots: FrozenSet[str],
        destinations: Tuple[str, ...],
    ) -> None:
        self.position = position
        self.neighbor = neighbor
        self.downstream_roots = downstream_roots
        self.destinations = destinations

    def __repr__(self) -> str:
        return (
            f"VirtualLink(#{self.position} via {self.neighbor!r}, "
            f"{len(self.destinations)} destinations, "
            f"downstream for {sorted(self.downstream_roots)!r})"
        )


class VirtualLinkTable:
    """A broker's virtual links and per-spanning-tree initialization masks.

    Parameters
    ----------
    topology / broker:
        The network and the broker this table belongs to.
    routing_table:
        The broker's routing table (canonical next hops).
    spanning_trees:
        All spanning trees in use, keyed by root broker (one per
        publisher-hosting broker — see
        :func:`repro.network.spanning.spanning_trees_for_publishers`).
    """

    def __init__(
        self,
        topology: Topology,
        broker: str,
        routing_table: RoutingTable,
        spanning_trees: Mapping[str, SpanningTree],
    ) -> None:
        if topology.node(broker).kind.is_client:
            raise RoutingError(f"virtual link tables belong to brokers, not {broker!r}")
        self.topology = topology
        self.broker = broker
        self.spanning_trees = dict(spanning_trees)
        self._position_of: Dict[str, int] = {}
        self.virtual_links: List[VirtualLink] = []
        self._build(routing_table)
        self._masks: Dict[str, TritVector] = {
            root: self._initialization_mask(root) for root in self.spanning_trees
        }

    def _build(self, routing_table: RoutingTable) -> None:
        groups: Dict[Tuple[str, FrozenSet[str]], List[str]] = {}
        local_clients = set(self.topology.clients_of(self.broker))
        for destination in self.topology.clients():
            if destination in local_clients:
                neighbor = destination
            elif routing_table.reaches(destination):
                neighbor = routing_table.next_hop(destination)
            else:
                # Cut off by a failure: the destination owns no virtual link
                # until a repair after its recovery re-adds it.
                continue
            signature = frozenset(
                root
                for root, tree in self.spanning_trees.items()
                if self.broker in tree.parent
                and tree.is_downstream(destination, self.broker)
            )
            groups.setdefault((neighbor, signature), []).append(destination)
        for (neighbor, signature), destinations in sorted(
            groups.items(), key=lambda item: (item[0][0], sorted(item[0][1]))
        ):
            position = len(self.virtual_links)
            virtual = VirtualLink(position, neighbor, signature, tuple(sorted(destinations)))
            self.virtual_links.append(virtual)
            for destination in destinations:
                self._position_of[destination] = position

    def layout(self) -> Tuple:
        """A comparable snapshot of positions, signatures and masks — equal
        layouts route identically, which is what repair's changed-detection
        needs."""
        return (
            tuple(
                (v.neighbor, tuple(sorted(v.downstream_roots)), v.destinations)
                for v in self.virtual_links
            ),
            tuple(sorted((root, str(mask)) for root, mask in self._masks.items())),
        )

    def rebuild(
        self,
        routing_table: RoutingTable,
        spanning_trees: Mapping[str, SpanningTree],
    ) -> bool:
        """Recompute virtual links and masks against repaired routing state.

        Returns ``True`` when the layout actually changed — the caller must
        then rebind/flush anything that cached positions or packed mask bits
        (engine annotations, link caches).  Returns ``False`` for repairs
        that did not touch this broker (e.g. a failed lateral link), so the
        caller can keep its warm caches.
        """
        before = self.layout()
        self.spanning_trees = dict(spanning_trees)
        self._position_of = {}
        self.virtual_links = []
        self._build(routing_table)
        self._masks = {
            root: self._initialization_mask(root) for root in self.spanning_trees
        }
        return self.layout() != before

    def restrict_mask(self, mask: TritVector, destinations: FrozenSet[str]) -> TritVector:
        """Force to No every position carrying none of ``destinations``.

        Replay uses this to re-route a recovered message toward only the
        destinations the failed element was responsible for, so subtrees
        that already received the event are not traversed again.
        """
        keep = [
            bool(destinations.intersection(virtual.destinations))
            for virtual in self.virtual_links
        ]
        return TritVector(
            trit if keep[i] else N for i, trit in enumerate(mask)
        )

    def _initialization_mask(self, root: str) -> TritVector:
        """Maybe on virtual links whose destinations are downstream of this
        broker in the tree rooted at ``root``, No elsewhere."""
        return TritVector(
            M if root in virtual.downstream_roots else N
            for virtual in self.virtual_links
        )

    # ------------------------------------------------------------------

    @property
    def num_links(self) -> int:
        """Number of virtual links (= trit vector length at this broker)."""
        return len(self.virtual_links)

    def position_of(self, destination: str) -> int:
        """The virtual-link position through which ``destination`` is reached."""
        try:
            return self._position_of[destination]
        except KeyError:
            raise RoutingError(
                f"{destination!r} is not a client destination known to {self.broker!r}"
            ) from None

    def neighbor_of_position(self, position: int) -> str:
        """The physical neighbor carrying virtual link ``position``."""
        try:
            return self.virtual_links[position].neighbor
        except IndexError:
            raise RoutingError(f"no virtual link #{position} at {self.broker!r}") from None

    def initialization_mask(self, root: str) -> TritVector:
        """The broker's mask for the spanning tree rooted at ``root``."""
        try:
            return self._masks[root]
        except KeyError:
            raise RoutingError(
                f"no spanning tree rooted at {root!r} registered with {self.broker!r}"
            ) from None

    def neighbors_for_mask(self, mask: TritVector) -> List[str]:
        """Distinct physical neighbors behind the mask's Yes positions."""
        return sorted({self.virtual_links[p].neighbor for p in mask.yes_positions()})

    @property
    def split_count(self) -> int:
        """How many physical links were split into multiple virtual links."""
        per_neighbor: Dict[str, int] = {}
        for virtual in self.virtual_links:
            per_neighbor[virtual.neighbor] = per_neighbor.get(virtual.neighbor, 0) + 1
        return sum(1 for count in per_neighbor.values() if count > 1)

    def __repr__(self) -> str:
        return (
            f"VirtualLinkTable({self.broker!r}, {self.num_links} virtual links, "
            f"{self.split_count} split)"
        )
