"""Broker-network topology model.

The paper's system (Figure 3) is a network of *brokers* with attached
*clients* (publishers and subscribers).  Brokers are connected to one another
by bidirectional links with a per-hop delay; every client is attached to
exactly one broker by a client link.

Link matching assigns one trit per *outgoing link* of a broker, so the model
gives each broker a deterministic, stable indexing of its incident links
(:meth:`Topology.link_index`): neighbors sorted by name.  Subscriber and
publisher clients are ordinary nodes — a broker's links to its own clients
participate in trit vectors exactly like broker-broker links, which is how
the paper's brokers "forward messages to its subscribers based on their
subscriptions".
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import TopologyError


class NodeKind(enum.Enum):
    """What a topology node is."""

    BROKER = "broker"
    SUBSCRIBER = "subscriber"
    PUBLISHER = "publisher"

    @property
    def is_client(self) -> bool:
        return self is not NodeKind.BROKER


class Node:
    """A named topology node."""

    __slots__ = ("name", "kind")

    def __init__(self, name: str, kind: NodeKind) -> None:
        if not name:
            raise TopologyError("node name must be non-empty")
        self.name = name
        self.kind = kind

    def __repr__(self) -> str:
        return f"Node({self.name!r}, {self.kind.value})"


class Link:
    """A bidirectional link between two nodes with a one-way hop delay.

    ``latency_ms`` is the one-way propagation delay the paper quotes (65 ms
    intercontinental, 25/10 ms interstate, 1 ms to clients).  Links are value
    objects identified by their unordered endpoint pair.
    """

    __slots__ = ("a", "b", "latency_ms")

    def __init__(self, a: str, b: str, latency_ms: float) -> None:
        if a == b:
            raise TopologyError(f"self-link at {a!r}")
        if latency_ms < 0:
            raise TopologyError(f"negative latency on link {a!r}-{b!r}")
        self.a = a
        self.b = b
        self.latency_ms = latency_ms

    @property
    def endpoints(self) -> Tuple[str, str]:
        return (self.a, self.b)

    def other(self, node: str) -> str:
        """The endpoint that is not ``node``."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise TopologyError(f"{node!r} is not an endpoint of link {self.a!r}-{self.b!r}")

    def key(self) -> Tuple[str, str]:
        """Canonical unordered endpoint pair."""
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)

    def __repr__(self) -> str:
        return f"Link({self.a!r}-{self.b!r}, {self.latency_ms}ms)"


class Topology:
    """A mutable broker/client network.

    Build with :meth:`add_broker`, :meth:`add_client` and :meth:`add_link`,
    then treat as read-only: routing tables, spanning trees and trit vectors
    all cache structural facts.  Mutating a topology that is already in use
    (:meth:`remove_link`, a recovery :meth:`add_link`, a broker join) leaves
    those caches stale until they are repaired — the fault layer
    (:mod:`repro.sim.faults`) drives :meth:`SpanningTree.repair
    <repro.network.spanning.SpanningTree.repair>` and friends after every
    change; mutating without repairing is an error the library does not try
    to detect.
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._adjacency: Dict[str, Dict[str, Link]] = {}

    # ------------------------------------------------------------------
    # Construction

    def add_broker(self, name: str) -> Node:
        """Add a broker node."""
        return self._add_node(name, NodeKind.BROKER)

    def add_client(
        self,
        name: str,
        broker: str,
        *,
        kind: NodeKind = NodeKind.SUBSCRIBER,
        latency_ms: float = 1.0,
    ) -> Node:
        """Add a client attached to ``broker`` by a client link."""
        if not kind.is_client:
            raise TopologyError("client kind must be SUBSCRIBER or PUBLISHER")
        if broker not in self._nodes or self._nodes[broker].kind is not NodeKind.BROKER:
            raise TopologyError(f"unknown broker {broker!r}")
        node = self._add_node(name, kind)
        self.add_link(name, broker, latency_ms=latency_ms)
        return node

    def _add_node(self, name: str, kind: NodeKind) -> Node:
        if name in self._nodes:
            raise TopologyError(f"duplicate node name {name!r}")
        node = Node(name, kind)
        self._nodes[name] = node
        self._adjacency[name] = {}
        return node

    def add_link(self, a: str, b: str, *, latency_ms: float) -> Link:
        """Add a bidirectional link between two existing nodes."""
        for name in (a, b):
            if name not in self._nodes:
                raise TopologyError(f"unknown node {name!r}")
        if self._nodes[a].kind.is_client and self._nodes[b].kind.is_client:
            raise TopologyError(f"clients {a!r} and {b!r} cannot be linked directly")
        link = Link(a, b, latency_ms)
        if link.key() in self._links:
            raise TopologyError(f"duplicate link {a!r}-{b!r}")
        self._links[link.key()] = link
        self._adjacency[a][b] = link
        self._adjacency[b][a] = link
        return link

    def remove_link(self, a: str, b: str) -> Link:
        """Remove the link between two nodes and return it (so a recovery can
        restore it with the same latency via :meth:`add_link`).

        This is the fault-injection entry point: cached structures (routing
        tables, spanning trees, virtual-link tables) do *not* see the change
        until they are repaired — see :mod:`repro.sim.faults`.
        """
        link = self.link_between(a, b)
        del self._links[link.key()]
        del self._adjacency[a][b]
        del self._adjacency[b][a]
        return link

    def has_link(self, a: str, b: str) -> bool:
        """Whether a link currently connects ``a`` and ``b``."""
        return b in self._adjacency.get(a, {})

    # ------------------------------------------------------------------
    # Queries

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def nodes(self) -> List[Node]:
        """All nodes sorted by name."""
        return [self._nodes[name] for name in sorted(self._nodes)]

    def brokers(self) -> List[str]:
        """Broker names, sorted."""
        return sorted(n.name for n in self._nodes.values() if n.kind is NodeKind.BROKER)

    def clients(self, *, kind: Optional[NodeKind] = None) -> List[str]:
        """Client names, sorted; optionally filtered to one kind."""
        return sorted(
            n.name
            for n in self._nodes.values()
            if n.kind.is_client and (kind is None or n.kind is kind)
        )

    def subscribers(self) -> List[str]:
        return self.clients(kind=NodeKind.SUBSCRIBER)

    def publishers(self) -> List[str]:
        return self.clients(kind=NodeKind.PUBLISHER)

    def links(self) -> List[Link]:
        """All links, sorted by endpoint pair."""
        return [self._links[key] for key in sorted(self._links)]

    def link_between(self, a: str, b: str) -> Link:
        link = self._adjacency.get(a, {}).get(b)
        if link is None:
            raise TopologyError(f"no link between {a!r} and {b!r}")
        return link

    def neighbors(self, name: str) -> List[str]:
        """Neighbor names of ``name``, sorted (this order defines trit vector
        positions — see :meth:`link_index`)."""
        if name not in self._nodes:
            raise TopologyError(f"unknown node {name!r}")
        return sorted(self._adjacency[name])

    def degree(self, name: str) -> int:
        return len(self._adjacency.get(name, {}))

    def link_index(self, broker: str) -> Dict[str, int]:
        """Map each neighbor of ``broker`` to its trit-vector position.

        Positions are assigned by sorted neighbor name, so every component
        that builds or reads a trit vector for this broker agrees on the
        layout without coordination.
        """
        return {neighbor: i for i, neighbor in enumerate(self.neighbors(broker))}

    def broker_of(self, client: str) -> str:
        """The broker a client is attached to."""
        node = self.node(client)
        if not node.kind.is_client:
            raise TopologyError(f"{client!r} is not a client")
        neighbors = self.neighbors(client)
        if len(neighbors) != 1:
            raise TopologyError(f"client {client!r} must have exactly one broker link")
        return neighbors[0]

    def clients_of(self, broker: str) -> List[str]:
        """Clients attached to ``broker``, sorted."""
        self.node(broker)
        return sorted(
            neighbor
            for neighbor in self._adjacency[broker]
            if self._nodes[neighbor].kind.is_client
        )

    def broker_neighbors(self, broker: str) -> List[str]:
        """Neighboring brokers of ``broker``, sorted."""
        self.node(broker)
        return sorted(
            neighbor
            for neighbor in self._adjacency[broker]
            if self._nodes[neighbor].kind is NodeKind.BROKER
        )

    def is_connected(self) -> bool:
        """Whether every node can reach every other node."""
        if not self._nodes:
            return True
        seen: Set[str] = set()
        start = next(iter(self._nodes))
        stack = [start]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._adjacency[current])
        return len(seen) == len(self._nodes)

    def validate(self) -> None:
        """Raise :class:`TopologyError` unless the network is usable:
        connected, with every client attached to exactly one broker."""
        if not self.brokers():
            raise TopologyError("topology has no brokers")
        if not self.is_connected():
            raise TopologyError("topology is not connected")
        for client in self.clients():
            self.broker_of(client)  # raises when malformed

    def __repr__(self) -> str:
        return (
            f"Topology({len(self.brokers())} brokers, {len(self.clients())} clients, "
            f"{len(self._links)} links)"
        )
