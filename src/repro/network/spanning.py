"""Spanning trees for event multicast — Section 3.2.

Every publisher's events follow one spanning tree of the broker network.  We
derive each spanning tree from canonical shortest paths rooted at the
publisher's broker (the paper: "we assume that events always follow the
shortest path"); by the canonical-path suffix property the tree is consistent
with every broker's routing table, so a single PST annotation per broker
serves all spanning trees (the clean case of the paper's footnote 1 — see
:mod:`repro.core.virtual_links` for the split-link case).

A :class:`SpanningTree` answers the question the initialization mask needs:
*which destinations are downstream of broker b, and through which of b's
links?*
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from repro.errors import RoutingError
from repro.network.paths import ShortestPaths
from repro.network.topology import Topology


class SpanningTree:
    """A shortest-path spanning tree rooted at a broker.

    The tree spans *all* nodes (brokers and clients).  ``root`` is the broker
    nearest the publisher; the publisher client itself hangs off the root like
    any other client.
    """

    def __init__(self, topology: Topology, root: str) -> None:
        if topology.node(root).kind.is_client:
            raise RoutingError(f"spanning trees are rooted at brokers, not {root!r}")
        self.topology = topology
        self.root = root
        paths = ShortestPaths(topology, root)
        missing = [n.name for n in topology.nodes() if n.name not in paths.parent]
        if missing:
            raise RoutingError(f"nodes unreachable from {root!r}: {missing!r}")
        self.parent: Dict[str, Optional[str]] = dict(paths.parent)
        self.children: Dict[str, List[str]] = {name.name: [] for name in topology.nodes()}
        for node, parent in self.parent.items():
            if parent is not None:
                self.children[parent].append(node)
        for child_list in self.children.values():
            child_list.sort()
        self._descendants: Dict[str, FrozenSet[str]] = {}
        self._compute_descendants(root)

    def _compute_descendants(self, node: str) -> FrozenSet[str]:
        collected: Set[str] = set()
        for child in self.children[node]:
            collected.add(child)
            collected |= self._compute_descendants(child)
        frozen = frozenset(collected)
        self._descendants[node] = frozen
        return frozen

    def descendants(self, node: str) -> FrozenSet[str]:
        """All nodes strictly below ``node`` in the tree."""
        try:
            return self._descendants[node]
        except KeyError:
            raise RoutingError(f"{node!r} is not in the spanning tree") from None

    def is_downstream(self, destination: str, of: str) -> bool:
        """Whether ``destination`` is a descendant of ``of``."""
        return destination in self.descendants(of)

    def downstream_via(self, broker: str, neighbor: str) -> FrozenSet[str]:
        """Destinations below ``broker`` whose tree path leaves through the
        link to ``neighbor``.

        Empty when ``neighbor`` is not a tree child of ``broker`` (the link
        is not part of this spanning tree, e.g. a lateral link).
        """
        if neighbor in self.children.get(broker, []):
            return frozenset({neighbor}) | self.descendants(neighbor)
        return frozenset()

    def path_from_root(self, node: str) -> List[str]:
        """Tree path from the root to ``node`` (inclusive)."""
        if node not in self.parent:
            raise RoutingError(f"{node!r} is not in the spanning tree")
        path = [node]
        while path[-1] != self.root:
            parent = self.parent[path[-1]]
            assert parent is not None
            path.append(parent)
        path.reverse()
        return path

    def depth(self, node: str) -> int:
        """Number of tree links between the root and ``node``."""
        return len(self.path_from_root(node)) - 1

    def __repr__(self) -> str:
        return f"SpanningTree(root={self.root!r}, {len(self.parent)} nodes)"


def spanning_trees_for_publishers(topology: Topology) -> Dict[str, SpanningTree]:
    """One spanning tree per broker that hosts at least one publisher.

    The paper: "At worst, there will be one spanning tree for each broker
    that has publisher neighbors."  Brokers without publishers never
    originate events, so they need no tree of their own.  Returns a map from
    *root broker* name to its tree; distinct publishers on the same broker
    share the tree.
    """
    trees: Dict[str, SpanningTree] = {}
    for publisher in topology.publishers():
        root = topology.broker_of(publisher)
        if root not in trees:
            trees[root] = SpanningTree(topology, root)
    return trees
