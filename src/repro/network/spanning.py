"""Spanning trees for event multicast — Section 3.2.

Every publisher's events follow one spanning tree of the broker network.  We
derive each spanning tree from canonical shortest paths rooted at the
publisher's broker (the paper: "we assume that events always follow the
shortest path"); by the canonical-path suffix property the tree is consistent
with every broker's routing table, so a single PST annotation per broker
serves all spanning trees (the clean case of the paper's footnote 1 — see
:mod:`repro.core.virtual_links` for the split-link case).

A :class:`SpanningTree` answers the question the initialization mask needs:
*which destinations are downstream of broker b, and through which of b's
links?*

Incremental repair
------------------
:meth:`SpanningTree.repair` patches the tree in place after the topology
changed (link/broker failure or recovery, broker join/leave).  Because a
node's canonical label embeds its whole root path, a node's tree position
changes iff something on its root path changed — so the repair touches
exactly the subtrees hanging off the failed (or improved) element: the
changed nodes' parent/child edges are rewired, and descendant sets are
recomputed only for the union of the changed nodes' old and new ancestor
chains, bottom-up.  Nodes cut off from the root are dropped from the tree
(the tree may cover a strict subset of the topology until they recover);
repair ≡ rebuild-from-scratch is asserted by the property suite.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from repro.errors import RoutingError
from repro.network.paths import ShortestPaths
from repro.network.topology import Topology


class SpanningTree:
    """A shortest-path spanning tree rooted at a broker.

    The tree spans *all* nodes (brokers and clients).  ``root`` is the broker
    nearest the publisher; the publisher client itself hangs off the root like
    any other client.  With ``partial=True`` unreachable nodes are silently
    left out instead of raising — that is the state a tree is in mid-failure,
    and the form used when a tree is first built for a broker that joined a
    degraded network.
    """

    def __init__(self, topology: Topology, root: str, *, partial: bool = False) -> None:
        if topology.node(root).kind.is_client:
            raise RoutingError(f"spanning trees are rooted at brokers, not {root!r}")
        self.topology = topology
        self.root = root
        self._paths = ShortestPaths(topology, root)
        if not partial:
            missing = [n.name for n in topology.nodes() if n.name not in self._paths.parent]
            if missing:
                raise RoutingError(f"nodes unreachable from {root!r}: {missing!r}")
        self.parent: Dict[str, Optional[str]] = dict(self._paths.parent)
        self.children: Dict[str, List[str]] = {name: [] for name in self.parent}
        for node, parent in self.parent.items():
            if parent is not None:
                self.children[parent].append(node)
        for child_list in self.children.values():
            child_list.sort()
        self._descendants: Dict[str, FrozenSet[str]] = {}
        self._compute_descendants(root)

    def _compute_descendants(self, node: str) -> FrozenSet[str]:
        collected: Set[str] = set()
        for child in self.children[node]:
            collected.add(child)
            collected |= self._compute_descendants(child)
        frozen = frozenset(collected)
        self._descendants[node] = frozen
        return frozen

    # ------------------------------------------------------------------
    # Incremental repair

    def repair(self) -> FrozenSet[str]:
        """Patch the tree after the underlying topology changed.

        Returns the set of nodes whose tree position changed: rerouted
        (new parent or new root path), dropped (unreachable), or attached
        (recovered / joined).  Empty when the change did not affect this
        tree (e.g. a lateral link the tree never used).
        """
        old_parent = dict(self.parent)
        changed = self._paths.repair()
        if not changed:
            return frozenset()

        # Rewire parent/child edges for exactly the changed nodes.
        new_parent = self._paths.parent
        for node in changed:
            old = old_parent.get(node)
            if node in new_parent:
                new = new_parent[node]
                self.parent[node] = new
                self.children.setdefault(node, [])
            else:
                new = None
                self.parent.pop(node, None)
                self.children.pop(node, None)
                self._descendants.pop(node, None)
            if old is not None and old != new:
                siblings = self.children.get(old)
                if siblings is not None and node in siblings:
                    siblings.remove(node)
            if node in new_parent and new is not None and old != new:
                # The new parent may itself be a just-attached node whose
                # children entry has not been created yet in this loop.
                siblings = self.children.setdefault(new, [])
                if node not in siblings:
                    siblings.append(node)
                    siblings.sort()

        # Descendant sets can change only at ancestors (old or new) of the
        # changed nodes; recompute those bottom-up from their children's
        # (already correct) sets.
        affected: Set[str] = set()
        for node in changed:
            walk = old_parent.get(node)
            while walk is not None:
                affected.add(walk)
                walk = old_parent.get(walk)
            walk = self.parent.get(node)
            while walk is not None:
                affected.add(walk)
                walk = self.parent.get(walk)
            if node in self.parent:
                affected.add(node)
        live_affected = [node for node in affected if node in self.parent]
        live_affected.sort(key=self._depth_unchecked, reverse=True)
        for node in live_affected:
            collected: Set[str] = set()
            for child in self.children[node]:
                collected.add(child)
                collected |= self._descendants[child]
            self._descendants[node] = frozenset(collected)
        return changed

    def _depth_unchecked(self, node: str) -> int:
        depth = 0
        walk = self.parent.get(node)
        while walk is not None:
            depth += 1
            walk = self.parent.get(walk)
        return depth

    # ------------------------------------------------------------------
    # Queries

    @property
    def covered(self) -> FrozenSet[str]:
        """The nodes the tree currently reaches (all of them when healthy)."""
        return frozenset(self.parent)

    def descendants(self, node: str) -> FrozenSet[str]:
        """All nodes strictly below ``node`` in the tree."""
        try:
            return self._descendants[node]
        except KeyError:
            raise RoutingError(f"{node!r} is not in the spanning tree") from None

    def is_downstream(self, destination: str, of: str) -> bool:
        """Whether ``destination`` is a descendant of ``of``."""
        return destination in self.descendants(of)

    def downstream_via(self, broker: str, neighbor: str) -> FrozenSet[str]:
        """Destinations below ``broker`` whose tree path leaves through the
        link to ``neighbor``.

        Empty when ``neighbor`` is not a tree child of ``broker`` (the link
        is not part of this spanning tree, e.g. a lateral link).
        """
        if neighbor in self.children.get(broker, []):
            return frozenset({neighbor}) | self.descendants(neighbor)
        return frozenset()

    def path_from_root(self, node: str) -> List[str]:
        """Tree path from the root to ``node`` (inclusive)."""
        if node not in self.parent:
            raise RoutingError(f"{node!r} is not in the spanning tree")
        path = [node]
        while path[-1] != self.root:
            parent = self.parent[path[-1]]
            assert parent is not None
            path.append(parent)
        path.reverse()
        return path

    def depth(self, node: str) -> int:
        """Number of tree links between the root and ``node``."""
        return len(self.path_from_root(node)) - 1

    def __repr__(self) -> str:
        return f"SpanningTree(root={self.root!r}, {len(self.parent)} nodes)"


def spanning_trees_for_publishers(topology: Topology) -> Dict[str, SpanningTree]:
    """One spanning tree per broker that hosts at least one publisher.

    The paper: "At worst, there will be one spanning tree for each broker
    that has publisher neighbors."  Brokers without publishers never
    originate events, so they need no tree of their own.  Returns a map from
    *root broker* name to its tree; distinct publishers on the same broker
    share the tree.
    """
    trees: Dict[str, SpanningTree] = {}
    for publisher in topology.publishers():
        root = topology.broker_of(publisher)
        if root not in trees:
            trees[root] = SpanningTree(topology, root)
    return trees
