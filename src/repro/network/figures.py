"""Canned topologies, including the paper's Figure 6 simulation network.

Figure 6: 39 brokers form three 13-broker trees (a root, 3 second-level
brokers, 9 third-level brokers each).  The three roots are connected to each
other; a small number of lateral links join non-root brokers of different
trees "to allow messages from some publishers to follow a different path than
other publishers".  Hop delays: 65 ms between roots (intercontinental), 25 ms
root to second level, 10 ms second to third level, 1 ms broker to client.
Each broker has 10 subscriber clients; the three tracked publishers P1, P2,
P3 sit in different trees.

Smaller helper topologies (:func:`linear_chain`, :func:`star`,
:func:`binary_tree`) are used throughout the tests and examples.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import TopologyError
from repro.network.topology import NodeKind, Topology

#: Hop delays from the paper, in milliseconds.
INTERCONTINENTAL_MS = 65.0
ROOT_TO_MID_MS = 25.0
MID_TO_LEAF_MS = 10.0
CLIENT_MS = 1.0
#: Lateral links are mid-tree long-haul links; the paper gives no number, so
#: we model them between second-level brokers at intercontinental-minus cost.
LATERAL_MS = 45.0

#: Lateral links of the default Figure 6 build: (tree, mid-index) pairs.
DEFAULT_LATERAL_LINKS: Tuple[Tuple[Tuple[int, int], Tuple[int, int]], ...] = (
    ((0, 1), (1, 1)),
    ((1, 2), (2, 0)),
)


def root_name(tree: int) -> str:
    return f"T{tree}.R"


def mid_name(tree: int, index: int) -> str:
    return f"T{tree}.M{index}"


def leaf_name(tree: int, mid_index: int, index: int) -> str:
    return f"T{tree}.L{mid_index}{index}"


def subscriber_name(broker: str, index: int) -> str:
    return f"S.{broker}.{index:02d}"


def figure6_topology(
    *,
    subscribers_per_broker: int = 10,
    lateral_links: Optional[Sequence[Tuple[Tuple[int, int], Tuple[int, int]]]] = None,
    publisher_brokers: Optional[Sequence[str]] = None,
) -> Topology:
    """Build the Figure 6 simulation topology.

    Parameters
    ----------
    subscribers_per_broker:
        The paper uses 10; smaller values speed up tests.
    lateral_links:
        Pairs of ``(tree, mid_index)`` coordinates to join laterally.
        Defaults to :data:`DEFAULT_LATERAL_LINKS`.
    publisher_brokers:
        The brokers hosting the tracked publishers P1, P2, P3.  Defaults to a
        third-level broker in tree 0, a third-level broker in tree 1, and a
        second-level broker in tree 2 (mirroring the figure, where P3 sits
        higher in its tree than P1 and P2).
    """
    if subscribers_per_broker < 0:
        raise TopologyError("subscribers_per_broker must be >= 0")
    topology = Topology()
    for tree in range(3):
        topology.add_broker(root_name(tree))
        for mid in range(3):
            topology.add_broker(mid_name(tree, mid))
            topology.add_link(root_name(tree), mid_name(tree, mid), latency_ms=ROOT_TO_MID_MS)
            for leaf in range(3):
                topology.add_broker(leaf_name(tree, mid, leaf))
                topology.add_link(
                    mid_name(tree, mid), leaf_name(tree, mid, leaf), latency_ms=MID_TO_LEAF_MS
                )
    for first, second in ((0, 1), (1, 2), (0, 2)):
        topology.add_link(root_name(first), root_name(second), latency_ms=INTERCONTINENTAL_MS)
    for (tree_a, mid_a), (tree_b, mid_b) in (
        DEFAULT_LATERAL_LINKS if lateral_links is None else lateral_links
    ):
        topology.add_link(
            mid_name(tree_a, mid_a), mid_name(tree_b, mid_b), latency_ms=LATERAL_MS
        )
    for broker in topology.brokers():
        for index in range(subscribers_per_broker):
            topology.add_client(
                subscriber_name(broker, index), broker, latency_ms=CLIENT_MS
            )
    if publisher_brokers is None:
        publisher_brokers = [leaf_name(0, 0, 0), leaf_name(1, 1, 0), mid_name(2, 2)]
    for number, broker in enumerate(publisher_brokers, start=1):
        topology.add_client(
            f"P{number}", broker, kind=NodeKind.PUBLISHER, latency_ms=CLIENT_MS
        )
    topology.validate()
    return topology


def linear_chain(
    num_brokers: int,
    *,
    subscribers_per_broker: int = 1,
    latency_ms: float = 10.0,
    publisher_broker_index: int = 0,
) -> Topology:
    """``B0 - B1 - ... - Bn-1`` with a publisher on one end.

    The workhorse topology for hop-count experiments (Chart 2 varies hops
    1-6) and for unit tests.
    """
    if num_brokers < 1:
        raise TopologyError("need at least one broker")
    topology = Topology()
    for i in range(num_brokers):
        topology.add_broker(f"B{i}")
        if i > 0:
            topology.add_link(f"B{i - 1}", f"B{i}", latency_ms=latency_ms)
    for i in range(num_brokers):
        for k in range(subscribers_per_broker):
            topology.add_client(subscriber_name(f"B{i}", k), f"B{i}", latency_ms=CLIENT_MS)
    topology.add_client(
        "P1", f"B{publisher_broker_index}", kind=NodeKind.PUBLISHER, latency_ms=CLIENT_MS
    )
    topology.validate()
    return topology


def star(
    num_edge_brokers: int,
    *,
    subscribers_per_broker: int = 1,
    latency_ms: float = 10.0,
) -> Topology:
    """A hub broker ``HUB`` with ``num_edge_brokers`` spokes and a publisher
    on the hub."""
    if num_edge_brokers < 1:
        raise TopologyError("need at least one edge broker")
    topology = Topology()
    topology.add_broker("HUB")
    for i in range(num_edge_brokers):
        name = f"E{i}"
        topology.add_broker(name)
        topology.add_link("HUB", name, latency_ms=latency_ms)
        for k in range(subscribers_per_broker):
            topology.add_client(subscriber_name(name, k), name, latency_ms=CLIENT_MS)
    topology.add_client("P1", "HUB", kind=NodeKind.PUBLISHER, latency_ms=CLIENT_MS)
    topology.validate()
    return topology


def binary_tree(
    depth: int,
    *,
    subscribers_per_leaf: int = 1,
    latency_ms: float = 10.0,
) -> Topology:
    """A complete binary tree of brokers of the given depth, publisher at the
    root, subscribers on the leaf brokers."""
    if depth < 0:
        raise TopologyError("depth must be >= 0")
    topology = Topology()
    names: List[str] = []
    for level in range(depth + 1):
        for index in range(2**level):
            name = f"N{level}.{index}"
            names.append(name)
            topology.add_broker(name)
            if level > 0:
                parent = f"N{level - 1}.{index // 2}"
                topology.add_link(parent, name, latency_ms=latency_ms)
    for index in range(2**depth):
        leaf = f"N{depth}.{index}"
        for k in range(subscribers_per_leaf):
            topology.add_client(subscriber_name(leaf, k), leaf, latency_ms=CLIENT_MS)
    topology.add_client("P1", "N0.0", kind=NodeKind.PUBLISHER, latency_ms=CLIENT_MS)
    topology.validate()
    return topology
