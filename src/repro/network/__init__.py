"""Broker-network substrate: topologies, canonical shortest paths, routing
tables, and per-publisher spanning trees (Section 3.2 of the paper)."""

from repro.network.figures import (
    CLIENT_MS,
    INTERCONTINENTAL_MS,
    LATERAL_MS,
    MID_TO_LEAF_MS,
    ROOT_TO_MID_MS,
    binary_tree,
    figure6_topology,
    linear_chain,
    star,
)
from repro.network.paths import RoutingTable, ShortestPaths, all_routing_tables
from repro.network.spanning import SpanningTree, spanning_trees_for_publishers
from repro.network.topology import Link, Node, NodeKind, Topology

__all__ = [
    "CLIENT_MS",
    "INTERCONTINENTAL_MS",
    "LATERAL_MS",
    "Link",
    "MID_TO_LEAF_MS",
    "Node",
    "NodeKind",
    "ROOT_TO_MID_MS",
    "RoutingTable",
    "ShortestPaths",
    "SpanningTree",
    "Topology",
    "all_routing_tables",
    "binary_tree",
    "figure6_topology",
    "linear_chain",
    "spanning_trees_for_publishers",
    "star",
]
