"""Canonical shortest paths and per-broker routing tables — Section 3.2.

"We assume that each broker knows the topology of the broker network as well
as the best paths between each broker and each destination. [...] From this
topology information, each broker constructs a routing table mapping each
possible destination to the link which is the next hop along the best path to
the destination."

Correctness of link matching requires the *same* best path to be chosen by
every broker along it (otherwise a broker's routing-table annotation can
disagree with the publisher's spanning tree and an event gets dropped or
duplicated — the situation the paper's "virtual links" footnote alludes to).
We therefore compute **canonical** shortest paths: among equal-cost paths the
one whose node-name sequence is lexicographically smallest.  Canonical paths
have the suffix property (any suffix of a canonical path is itself canonical),
which makes every broker's routing table consistent with every shortest-path
spanning tree.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.errors import RoutingError
from repro.network.topology import Topology


class ShortestPaths:
    """Single-source canonical shortest paths over a topology.

    ``distance_ms[v]`` is the total latency from the source to ``v``;
    ``parent[v]`` the predecessor on the canonical path (``None`` at the
    source); unreachable nodes are absent from both maps.
    """

    def __init__(self, topology: Topology, source: str) -> None:
        topology.node(source)
        self.topology = topology
        self.source = source
        self.distance_ms: Dict[str, float] = {}
        self.parent: Dict[str, Optional[str]] = {}
        self._run_dijkstra()

    def _run_dijkstra(self) -> None:
        # Priority key: (cost, path-as-name-tuple).  Comparing the explicit
        # path tuple implements the canonical (lexicographically smallest
        # among equal cost) choice; networks here are small enough that the
        # O(path length) comparisons are irrelevant.
        best: Dict[str, Tuple[float, Tuple[str, ...]]] = {}
        start = (0.0, (self.source,))
        heap: List[Tuple[float, Tuple[str, ...]]] = [start]
        best[self.source] = start
        while heap:
            cost, path = heapq.heappop(heap)
            node = path[-1]
            if best.get(node, (float("inf"), ())) < (cost, path):
                continue  # stale entry
            for neighbor in self.topology.neighbors(node):
                link = self.topology.link_between(node, neighbor)
                candidate = (cost + link.latency_ms, path + (neighbor,))
                incumbent = best.get(neighbor)
                if incumbent is None or candidate < incumbent:
                    best[neighbor] = candidate
                    heapq.heappush(heap, candidate)
        for node, (cost, path) in best.items():
            self.distance_ms[node] = cost
            self.parent[node] = path[-2] if len(path) > 1 else None

    def path_to(self, destination: str) -> List[str]:
        """The canonical path from the source to ``destination`` (inclusive)."""
        if destination not in self.parent:
            raise RoutingError(f"{destination!r} is unreachable from {self.source!r}")
        path = [destination]
        while path[-1] != self.source:
            parent = self.parent[path[-1]]
            assert parent is not None
            path.append(parent)
        path.reverse()
        return path

    def hop_count(self, destination: str) -> int:
        """Number of links on the canonical path to ``destination``."""
        return len(self.path_to(destination)) - 1


class RoutingTable:
    """A broker's map from every destination to the next-hop neighbor.

    Built from the broker's own canonical shortest paths; by the suffix
    property this agrees with every other broker's table and with every
    shortest-path spanning tree.
    """

    def __init__(self, topology: Topology, broker: str) -> None:
        if topology.node(broker).kind.is_client:
            raise RoutingError(f"routing tables belong to brokers, not {broker!r}")
        self.topology = topology
        self.broker = broker
        self._paths = ShortestPaths(topology, broker)
        self._next_hop: Dict[str, str] = {}
        for destination in self._paths.parent:
            if destination == broker:
                continue
            path = self._paths.path_to(destination)
            self._next_hop[destination] = path[1]

    def next_hop(self, destination: str) -> str:
        """The neighbor on the best path toward ``destination``."""
        try:
            return self._next_hop[destination]
        except KeyError:
            raise RoutingError(
                f"{destination!r} is unreachable from broker {self.broker!r}"
            ) from None

    def destinations_via(self, neighbor: str) -> List[str]:
        """All destinations whose best path leaves through ``neighbor``."""
        return sorted(d for d, hop in self._next_hop.items() if hop == neighbor)

    def distance_ms(self, destination: str) -> float:
        try:
            return self._paths.distance_ms[destination]
        except KeyError:
            raise RoutingError(
                f"{destination!r} is unreachable from broker {self.broker!r}"
            ) from None

    def __repr__(self) -> str:
        return f"RoutingTable({self.broker!r}, {len(self._next_hop)} destinations)"


def all_routing_tables(topology: Topology) -> Dict[str, RoutingTable]:
    """One routing table per broker."""
    topology.validate()
    return {broker: RoutingTable(topology, broker) for broker in topology.brokers()}
