"""Canonical shortest paths and per-broker routing tables — Section 3.2.

"We assume that each broker knows the topology of the broker network as well
as the best paths between each broker and each destination. [...] From this
topology information, each broker constructs a routing table mapping each
possible destination to the link which is the next hop along the best path to
the destination."

Correctness of link matching requires the *same* best path to be chosen by
every broker along it (otherwise a broker's routing-table annotation can
disagree with the publisher's spanning tree and an event gets dropped or
duplicated — the situation the paper's "virtual links" footnote alludes to).
We therefore compute **canonical** shortest paths: among equal-cost paths the
one whose node-name sequence is lexicographically smallest.  Canonical paths
have the suffix property (any suffix of a canonical path is itself canonical),
which makes every broker's routing table consistent with every shortest-path
spanning tree.

Incremental repair
------------------
:meth:`ShortestPaths.repair` revalidates the cached labels against the
current topology after links were removed or added (fault injection,
recovery, broker join/leave).  Removing an edge can only *worsen* paths, and
only for nodes whose canonical path used that edge — every surviving label
stays canonical because the candidate set it was minimal over only shrank.
So repair detaches exactly the subtree hanging off the failed element, then
re-runs a Dijkstra *bounded to the detached set*, seeded from the boundary
edges out of the intact region.  Added edges can only *improve* paths, so
they seed a relaxation wave that touches nothing unless it genuinely wins
(including lexicographic tie-break wins at equal cost).  The result is
guaranteed equal to a from-scratch rebuild — the property suite asserts it.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import RoutingError
from repro.network.topology import Topology

#: A canonical label: (total cost, full path as a name tuple).  Tuple
#: comparison on labels *is* the canonical order.
Label = Tuple[float, Tuple[str, ...]]


class ShortestPaths:
    """Single-source canonical shortest paths over a topology.

    ``distance_ms[v]`` is the total latency from the source to ``v``;
    ``parent[v]`` the predecessor on the canonical path (``None`` at the
    source); unreachable nodes are absent from both maps.
    """

    def __init__(self, topology: Topology, source: str) -> None:
        topology.node(source)
        self.topology = topology
        self.source = source
        self.distance_ms: Dict[str, float] = {}
        self.parent: Dict[str, Optional[str]] = {}
        #: Canonical labels, kept so repair() can patch instead of rebuild.
        self._labels: Dict[str, Label] = {}
        self._run_dijkstra()

    def _run_dijkstra(self) -> None:
        # Priority key: (cost, path-as-name-tuple).  Comparing the explicit
        # path tuple implements the canonical (lexicographically smallest
        # among equal cost) choice; networks here are small enough that the
        # O(path length) comparisons are irrelevant.
        best: Dict[str, Label] = {}
        start = (0.0, (self.source,))
        heap: List[Label] = [start]
        best[self.source] = start
        while heap:
            cost, path = heapq.heappop(heap)
            node = path[-1]
            if best.get(node, (float("inf"), ())) < (cost, path):
                continue  # stale entry
            for neighbor in self.topology.neighbors(node):
                link = self.topology.link_between(node, neighbor)
                candidate = (cost + link.latency_ms, path + (neighbor,))
                incumbent = best.get(neighbor)
                if incumbent is None or candidate < incumbent:
                    best[neighbor] = candidate
                    heapq.heappush(heap, candidate)
        self._labels = best
        self._publish_labels(best.keys(), removed=())

    def _publish_labels(self, changed, removed) -> None:
        """Sync the public ``distance_ms`` / ``parent`` views with labels."""
        for node in removed:
            self.distance_ms.pop(node, None)
            self.parent.pop(node, None)
        for node in changed:
            cost, path = self._labels[node]
            self.distance_ms[node] = cost
            self.parent[node] = path[-2] if len(path) > 1 else None

    # ------------------------------------------------------------------
    # Incremental repair

    def repair(self) -> FrozenSet[str]:
        """Revalidate labels against the current topology.

        Call after any number of link removals/additions or node joins.
        Returns the set of nodes whose canonical label changed — including
        nodes that became unreachable (label dropped) and nodes that gained
        a label (joined or re-attached).
        """
        old_labels = self._labels
        # Phase A — detach: a label is invalid when its path uses an edge
        # that no longer exists, or the node itself left the topology.
        detached: Set[str] = set()
        for node, (_cost, path) in old_labels.items():
            if node not in self.topology:
                detached.add(node)
                continue
            for a, b in zip(path, path[1:]):
                if not self.topology.has_link(a, b):
                    detached.add(node)
                    break
        # Nodes present in the topology but without a label (a broker join)
        # are "detached" too: candidates for (re-)attachment below.
        for node in self.topology.nodes():
            if node.name not in old_labels:
                detached.add(node.name)
        if self.source in detached:  # pragma: no cover - source never leaves
            raise RoutingError(f"shortest-path source {self.source!r} was removed")

        labels = {n: label for n, label in old_labels.items() if n not in detached}
        if detached:
            # Bounded Dijkstra over the detached set only, seeded from every
            # boundary edge out of the intact region.  Surviving labels are
            # still canonical (removals only shrink their candidate sets), so
            # they are safe to relax from without re-settling them.
            heap: List[Label] = []
            for node, (cost, path) in labels.items():
                if node not in self.topology:
                    continue
                for neighbor in self.topology.neighbors(node):
                    if neighbor in detached and neighbor in self.topology:
                        link = self.topology.link_between(node, neighbor)
                        heapq.heappush(
                            heap, (cost + link.latency_ms, path + (neighbor,))
                        )
            settled: Set[str] = set()
            while heap:
                cost, path = heapq.heappop(heap)
                node = path[-1]
                if node in settled:
                    continue
                incumbent = labels.get(node)
                if incumbent is not None and incumbent <= (cost, path):
                    continue
                labels[node] = (cost, path)
                settled.add(node)
                for neighbor in self.topology.neighbors(node):
                    if neighbor in detached and neighbor not in settled:
                        link = self.topology.link_between(node, neighbor)
                        heapq.heappush(
                            heap, (cost + link.latency_ms, path + (neighbor,))
                        )

        # Phase B — improvement wave: added edges (and any re-attachment that
        # opened a better route) can only improve labels, so one scan of the
        # live edges seeds a relaxation wave that settles the rest.  Includes
        # lexicographic tie-break wins at equal cost — canonical order is the
        # full (cost, path) tuple order.
        heap = []
        for link in self.topology.links():
            for u, v in ((link.a, link.b), (link.b, link.a)):
                label = labels.get(u)
                if label is None:
                    continue
                candidate = (label[0] + link.latency_ms, label[1] + (v,))
                incumbent = labels.get(v)
                if incumbent is None or candidate < incumbent:
                    heapq.heappush(heap, candidate)
        while heap:
            cost, path = heapq.heappop(heap)
            node = path[-1]
            incumbent = labels.get(node)
            if incumbent is not None and incumbent <= (cost, path):
                continue
            labels[node] = (cost, path)
            for neighbor in self.topology.neighbors(node):
                link = self.topology.link_between(node, neighbor)
                candidate = (cost + link.latency_ms, path + (neighbor,))
                if labels.get(neighbor, (float("inf"), ())) > candidate:
                    heapq.heappush(heap, candidate)

        removed = frozenset(n for n in old_labels if n not in labels)
        changed = frozenset(
            n for n, label in labels.items() if old_labels.get(n) != label
        )
        self._labels = labels
        self._publish_labels(changed, removed=removed)
        return changed | removed

    def path_to(self, destination: str) -> List[str]:
        """The canonical path from the source to ``destination`` (inclusive)."""
        if destination not in self.parent:
            raise RoutingError(f"{destination!r} is unreachable from {self.source!r}")
        path = [destination]
        while path[-1] != self.source:
            parent = self.parent[path[-1]]
            assert parent is not None
            path.append(parent)
        path.reverse()
        return path

    def hop_count(self, destination: str) -> int:
        """Number of links on the canonical path to ``destination``."""
        return len(self.path_to(destination)) - 1


class RoutingTable:
    """A broker's map from every destination to the next-hop neighbor.

    Built from the broker's own canonical shortest paths; by the suffix
    property this agrees with every other broker's table and with every
    shortest-path spanning tree.
    """

    def __init__(self, topology: Topology, broker: str) -> None:
        if topology.node(broker).kind.is_client:
            raise RoutingError(f"routing tables belong to brokers, not {broker!r}")
        self.topology = topology
        self.broker = broker
        self._paths = ShortestPaths(topology, broker)
        self._next_hop: Dict[str, str] = {}
        for destination in self._paths.parent:
            if destination == broker:
                continue
            path = self._paths.path_to(destination)
            self._next_hop[destination] = path[1]

    def repair(self) -> FrozenSet[str]:
        """Re-derive next hops after a topology change; returns the changed
        destinations (rerouted, newly reachable, or now unreachable)."""
        changed = self._paths.repair()
        for destination in changed:
            if destination == self.broker:
                continue
            if destination in self._paths.parent:
                self._next_hop[destination] = self._paths.path_to(destination)[1]
            else:
                self._next_hop.pop(destination, None)
        return changed

    def next_hop(self, destination: str) -> str:
        """The neighbor on the best path toward ``destination``."""
        try:
            return self._next_hop[destination]
        except KeyError:
            raise RoutingError(
                f"{destination!r} is unreachable from broker {self.broker!r}"
            ) from None

    def reaches(self, destination: str) -> bool:
        """Whether ``destination`` is currently reachable from this broker."""
        return destination == self.broker or destination in self._next_hop

    def destinations_via(self, neighbor: str) -> List[str]:
        """All destinations whose best path leaves through ``neighbor``."""
        return sorted(d for d, hop in self._next_hop.items() if hop == neighbor)

    def distance_ms(self, destination: str) -> float:
        try:
            return self._paths.distance_ms[destination]
        except KeyError:
            raise RoutingError(
                f"{destination!r} is unreachable from broker {self.broker!r}"
            ) from None

    def __repr__(self) -> str:
        return f"RoutingTable({self.broker!r}, {len(self._next_hop)} destinations)"


def all_routing_tables(topology: Topology) -> Dict[str, RoutingTable]:
    """One routing table per broker."""
    topology.validate()
    return {broker: RoutingTable(topology, broker) for broker in topology.brokers()}
