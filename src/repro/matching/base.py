"""The informal matcher interface shared by all matching engines.

:class:`ParallelSearchTree`, :class:`FactoredMatcher` and :class:`SearchDag`
all expose the same surface; components that only *consume* a matcher (the
broker engine, the simulator's protocols, the benchmarks) type against this
ABC.  Python duck typing would suffice, but the ABC documents the contract
and gives a single place to explain the semantics.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Iterable, List, Sequence, TypeVar

from repro.matching.events import Event
from repro.matching.pst import MatchResult
from repro.matching.predicates import Subscription

if TYPE_CHECKING:  # imported lazily to avoid a cycle with repro.core
    from repro.core.annotation import LinkOfSubscriber
    from repro.core.link_matcher import LinkMatchResult
    from repro.core.trits import TritVector

_R = TypeVar("_R")


def per_event_loop(fn: Callable[[Event], _R], events: Sequence[Event]) -> List[_R]:
    """The per-event batch fallback: result ``i`` is exactly ``fn(events[i])``.

    The one canonical form of the loop that the base-class batch methods
    (and any engine without a real batched kernel) fall back to — kept as a
    named helper so implementations don't each re-grow their own copy.
    """
    return [fn(event) for event in events]


def union_merge(results: Iterable[MatchResult]) -> MatchResult:
    """Union-merge per-partition answers for one event.

    For *disjoint* partitions (the sharded engine's contract) concatenation
    is an exact, duplicate-free union; steps add up because every partition
    reports the walk a dedicated engine over its subscriptions would take.
    """
    matched: List[Subscription] = []
    steps = 0
    for result in results:
        matched.extend(result.subscriptions)
        steps += result.steps
    return MatchResult(matched, steps)


class Matcher(abc.ABC):
    """Anything that can match events against a mutable set of subscriptions.

    Contract:

    * :meth:`match` returns exactly the subscriptions whose predicates are
      satisfied by the event (same set as evaluating every predicate
      directly), plus the number of matching steps taken;
    * :meth:`insert` / :meth:`remove` update the set, addressed by
      ``subscription_id``;
    * ``subscriptions`` lists the currently registered subscriptions.
    """

    @abc.abstractmethod
    def insert(self, subscription: Subscription) -> None:
        """Register a subscription."""

    @abc.abstractmethod
    def remove(self, subscription_id: int) -> Subscription:
        """Unregister and return the subscription with the given id."""

    @abc.abstractmethod
    def match(self, event: Event) -> MatchResult:
        """Find all satisfied subscriptions."""

    def match_batch(self, events: Sequence[Event]) -> List[MatchResult]:
        """Match a batch of events.

        Result ``i`` is exactly ``match(events[i])`` — same match set, same
        step count.  This base fallback just loops (:func:`per_event_loop`);
        engines with a real batched kernel (``CompiledEngine``) override it
        to amortize traversal across the batch and hit the projection cache.
        """
        return per_event_loop(self.match, events)

    @property
    @abc.abstractmethod
    def subscriptions(self) -> List[Subscription]:
        """The registered subscriptions (order unspecified)."""


class MatcherEngine(Matcher):
    """A :class:`Matcher` that can additionally run the Section 3.3
    link-matching refinement — the full per-broker matching surface.

    Two interchangeable implementations exist (see
    :mod:`repro.matching.engines`):

    * ``TreeEngine`` — the object-graph code paths
      (:class:`~repro.matching.pst.ParallelSearchTree` +
      :class:`~repro.core.annotation.TreeAnnotation` +
      :class:`~repro.core.link_matcher.LinkMatcher`);
    * ``CompiledEngine`` — the array-based kernels of
      :mod:`repro.matching.compile`.

    Both preserve exact match sets and step counts; consumers (router,
    fabric, protocols, broker engine) select one by name via
    :func:`repro.matching.engines.create_engine`.

    Link matching is optional state: :meth:`bind_links` declares the
    broker's virtual-link geometry; :meth:`match_links` then refines an
    initialization mask for an event.  Engines maintain their annotations
    incrementally across :meth:`insert` / :meth:`remove`.
    """

    #: The engine's registry name ("tree" / "compiled").
    name: str = "abstract"

    @abc.abstractmethod
    def bind_links(
        self, num_links: int, link_of_subscriber: "LinkOfSubscriber"
    ) -> None:
        """Declare the number of (virtual) links and the subscription-to-link
        mapping; invalidates any previously computed annotations."""

    @abc.abstractmethod
    def match_links(
        self, event: Event, initialization_mask: "TritVector"
    ) -> "LinkMatchResult":
        """Run the Section 3.3 refinement search; requires a prior
        :meth:`bind_links`."""

    def match_links_batch(
        self, events: Sequence[Event], initialization_mask: "TritVector"
    ) -> List["LinkMatchResult"]:
        """Refine one shared initialization mask for a batch of events.

        Result ``i`` is exactly ``match_links(events[i], mask)``.  This base
        fallback loops (:func:`per_event_loop`); ``CompiledEngine``
        overrides it with the deduplicating, cache-backed batch path.
        """
        return per_event_loop(
            lambda event: self.match_links(event, initialization_mask), events
        )


# ParallelSearchTree satisfies the interface structurally; register it so
# isinstance checks work without forcing inheritance into the hot class.
# (FactoredMatcher subclasses Matcher directly to inherit the match_batch
# fallback.)
def _register_implementations() -> None:
    from repro.matching.pst import ParallelSearchTree

    Matcher.register(ParallelSearchTree)


_register_implementations()
