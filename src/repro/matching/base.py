"""The informal matcher interface shared by all matching engines.

:class:`ParallelSearchTree`, :class:`FactoredMatcher` and :class:`SearchDag`
all expose the same surface; components that only *consume* a matcher (the
broker engine, the simulator's protocols, the benchmarks) type against this
ABC.  Python duck typing would suffice, but the ABC documents the contract
and gives a single place to explain the semantics.
"""

from __future__ import annotations

import abc
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.errors import RoutingError
from repro.matching.events import Event
from repro.matching.pst import MatchResult
from repro.matching.predicates import Subscription

if TYPE_CHECKING:  # imported lazily to avoid a cycle with repro.core
    from repro.core.annotation import LinkOfSubscriber
    from repro.core.link_matcher import LinkMatchResult
    from repro.core.trits import TritVector

_R = TypeVar("_R")


def per_event_loop(fn: Callable[[Event], _R], events: Sequence[Event]) -> List[_R]:
    """The per-event batch fallback: result ``i`` is exactly ``fn(events[i])``.

    The one canonical form of the loop that the base-class batch methods
    (and any engine without a real batched kernel) fall back to — kept as a
    named helper so implementations don't each re-grow their own copy.
    """
    return [fn(event) for event in events]


def union_merge(results: Iterable[MatchResult]) -> MatchResult:
    """Union-merge per-partition answers for one event.

    For *disjoint* partitions (the sharded engine's contract) concatenation
    is an exact, duplicate-free union; steps add up because every partition
    reports the walk a dedicated engine over its subscriptions would take.
    """
    matched: List[Subscription] = []
    steps = 0
    for result in results:
        matched.extend(result.subscriptions)
        steps += result.steps
    return MatchResult(matched, steps)


class Matcher(abc.ABC):
    """Anything that can match events against a mutable set of subscriptions.

    Contract:

    * :meth:`match` returns exactly the subscriptions whose predicates are
      satisfied by the event (same set as evaluating every predicate
      directly), plus the number of matching steps taken;
    * :meth:`insert` / :meth:`remove` update the set, addressed by
      ``subscription_id``;
    * ``subscriptions`` lists the currently registered subscriptions.
    """

    @abc.abstractmethod
    def insert(self, subscription: Subscription) -> None:
        """Register a subscription."""

    @abc.abstractmethod
    def remove(self, subscription_id: int) -> Subscription:
        """Unregister and return the subscription with the given id."""

    @abc.abstractmethod
    def match(self, event: Event) -> MatchResult:
        """Find all satisfied subscriptions."""

    def match_batch(self, events: Sequence[Event]) -> List[MatchResult]:
        """Match a batch of events.

        Result ``i`` is exactly ``match(events[i])`` — same match set, same
        step count.  This base fallback just loops (:func:`per_event_loop`);
        engines with a real batched kernel (``CompiledEngine``) override it
        to amortize traversal across the batch and hit the projection cache.
        """
        return per_event_loop(self.match, events)

    @property
    @abc.abstractmethod
    def subscriptions(self) -> List[Subscription]:
        """The registered subscriptions (order unspecified)."""


class MatcherEngine(Matcher):
    """A :class:`Matcher` that can additionally run the Section 3.3
    link-matching refinement — the full per-broker matching surface.

    Two interchangeable implementations exist (see
    :mod:`repro.matching.engines`):

    * ``TreeEngine`` — the object-graph code paths
      (:class:`~repro.matching.pst.ParallelSearchTree` +
      :class:`~repro.core.annotation.TreeAnnotation` +
      :class:`~repro.core.link_matcher.LinkMatcher`);
    * ``CompiledEngine`` — the array-based kernels of
      :mod:`repro.matching.compile`.

    Both preserve exact match sets and step counts; consumers (router,
    fabric, protocols, broker engine) select one by name via
    :func:`repro.matching.engines.create_engine`.

    Link matching is optional state: :meth:`bind_links` declares the
    broker's virtual-link geometry; :meth:`match_links` then refines an
    initialization mask for an event.  Engines maintain their annotations
    incrementally across :meth:`insert` / :meth:`remove`.
    """

    #: The engine's registry name ("tree" / "compiled").
    name: str = "abstract"

    @abc.abstractmethod
    def bind_links(
        self, num_links: int, link_of_subscriber: "LinkOfSubscriber"
    ) -> None:
        """Declare the number of (virtual) links and the subscription-to-link
        mapping; invalidates any previously computed annotations."""

    @abc.abstractmethod
    def match_links(
        self, event: Event, initialization_mask: "TritVector"
    ) -> "LinkMatchResult":
        """Run the Section 3.3 refinement search; requires a prior
        :meth:`bind_links`."""

    def match_links_batch(
        self, events: Sequence[Event], initialization_mask: "TritVector"
    ) -> List["LinkMatchResult"]:
        """Refine one shared initialization mask for a batch of events.

        Result ``i`` is exactly ``match_links(events[i], mask)``.  This base
        fallback loops (:func:`per_event_loop`); ``CompiledEngine``
        overrides it with the deduplicating, cache-backed batch path.
        """
        return per_event_loop(
            lambda event: self.match_links(event, initialization_mask), events
        )

    # ------------------------------------------------------------------
    # Digest projection (match-once forwarding)

    #: Lazily built ``subscription_id -> packed link bits`` table; ``None``
    #: means stale.  Class-level default so engines need no ``__init__``
    #: cooperation; instance assignment shadows it.
    _link_projection: Optional[Dict[int, int]] = None

    def _invalidate_link_projection(self) -> None:
        """Drop the projection table.  Engines call this whenever the
        subscription set or the link binding changes (insert/remove/
        bind_links) — a stale table would project onto pre-churn links."""
        self._link_projection = None

    def _projection_link_of(self) -> "Optional[LinkOfSubscriber]":
        """The subscription→link mapping the projection table is built from
        (the one handed to :meth:`bind_links`); ``None`` before binding.
        The aggregating engine overrides this: its inner binding maps
        *representatives* to link unions, while digests carry member ids."""
        return getattr(self, "_link_of_subscriber", None)

    def _link_projection_table(self) -> Dict[int, int]:
        table = self._link_projection
        if table is None:
            link_of = self._projection_link_of()
            if link_of is None:
                raise RoutingError(
                    f"{type(self).__name__}.project_links() requires a prior "
                    f"bind_links()"
                )
            table = {}
            for subscription in self.subscriptions:
                mapped = link_of(subscription)
                positions = (mapped,) if isinstance(mapped, int) else mapped
                bits = 0
                for position in positions:
                    if position >= 0:
                        bits |= 1 << position
                table[subscription.subscription_id] = bits
            self._link_projection = table
        return table

    def project_links(
        self, subscription_ids: Sequence[int], yes_bits: int, maybe_bits: int
    ) -> Tuple[int, int]:
        """Refine a packed initialization mask from a match digest: one OR
        per matched subscription over the precomputed leaf→link-bits table,
        instead of a full refinement descent.

        ``subscription_ids`` is the digest's matched set; the result
        ``(final_yes_bits, steps)`` is bit-identical to
        :meth:`match_links`'s fully refined mask *for the same subscription
        set*: a link ends up Yes iff it started Yes, or started Maybe and
        carries at least one matched subscription — exactly the refinement
        search's fixpoint.  Raises :class:`RoutingError` for ids this engine
        does not hold (the caller must fall back to full matching; the sets
        have diverged).

        ``CompiledEngine`` overrides this with a projection over the
        compiled program's packed leaf-annotation columns (one OR per
        matched *leaf*); this generic form pays one OR per matched
        subscription from a per-id table and works on every engine.
        """
        table = self._link_projection_table()
        bits = 0
        steps = 0
        for subscription_id in subscription_ids:
            entry = table.get(subscription_id)
            if entry is None:
                raise RoutingError(
                    f"digest names subscription #{subscription_id}, which this "
                    f"engine does not hold — subscription sets have diverged"
                )
            bits |= entry
            steps += 1
        self._project_links_counter().inc()
        return yes_bits | (maybe_bits & bits), steps

    def _project_links_counter(self):
        """The ``engine.project_links_calls`` counter, fetched lazily (this
        base class has no ``__init__`` to fetch it in) and cached."""
        counter = getattr(self, "_obs_project_links", None)
        if counter is None:
            from repro.obs import get_registry

            counter = get_registry().counter(
                "engine.project_links_calls", engine=self.name
            )
            self._obs_project_links = counter
        return counter


# ParallelSearchTree satisfies the interface structurally; register it so
# isinstance checks work without forcing inheritance into the hot class.
# (FactoredMatcher subclasses Matcher directly to inherit the match_batch
# fallback.)
def _register_implementations() -> None:
    from repro.matching.pst import ParallelSearchTree

    Matcher.register(ParallelSearchTree)


_register_implementations()
