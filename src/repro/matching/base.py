"""The informal matcher interface shared by all matching engines.

:class:`ParallelSearchTree`, :class:`FactoredMatcher` and :class:`SearchDag`
all expose the same surface; components that only *consume* a matcher (the
broker engine, the simulator's protocols, the benchmarks) type against this
ABC.  Python duck typing would suffice, but the ABC documents the contract
and gives a single place to explain the semantics.
"""

from __future__ import annotations

import abc
from typing import List

from repro.matching.events import Event
from repro.matching.pst import MatchResult
from repro.matching.predicates import Subscription


class Matcher(abc.ABC):
    """Anything that can match events against a mutable set of subscriptions.

    Contract:

    * :meth:`match` returns exactly the subscriptions whose predicates are
      satisfied by the event (same set as evaluating every predicate
      directly), plus the number of matching steps taken;
    * :meth:`insert` / :meth:`remove` update the set, addressed by
      ``subscription_id``;
    * ``subscriptions`` lists the currently registered subscriptions.
    """

    @abc.abstractmethod
    def insert(self, subscription: Subscription) -> None:
        """Register a subscription."""

    @abc.abstractmethod
    def remove(self, subscription_id: int) -> Subscription:
        """Unregister and return the subscription with the given id."""

    @abc.abstractmethod
    def match(self, event: Event) -> MatchResult:
        """Find all satisfied subscriptions."""

    @property
    @abc.abstractmethod
    def subscriptions(self) -> List[Subscription]:
        """The registered subscriptions (order unspecified)."""


# The concrete matchers satisfy the interface structurally; register them so
# isinstance checks work without forcing inheritance into the hot classes.
def _register_implementations() -> None:
    from repro.matching.optimizations import FactoredMatcher
    from repro.matching.pst import ParallelSearchTree

    Matcher.register(ParallelSearchTree)
    Matcher.register(FactoredMatcher)


_register_implementations()
