"""Event schemas and information spaces.

The paper models a pub/sub system as a set of *information spaces*, each
associated with an *event schema* that defines the typed attributes carried by
every event published into that space.  The running example is a stock-trade
space with schema ``[issue: string, price: dollar, volume: integer]``.

This module provides:

* :class:`AttributeType` — the small set of value types the matching engine
  understands (strings, integers, floats/dollars, booleans).
* :class:`Attribute` — a named, typed schema slot.
* :class:`EventSchema` — an ordered collection of attributes with validation
  and coercion helpers.
* :class:`InformationSpace` — a named schema, the unit a client subscribes to.

Schemas are immutable once constructed: brokers across the network must agree
on attribute order (the Parallel Search Tree is built over a fixed attribute
order), so mutation after distribution would corrupt routing state.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple, Union

from repro.errors import SchemaError

#: The runtime types an attribute value may take.
AttributeValue = Union[str, int, float, bool]


class AttributeType(enum.Enum):
    """Value type of a schema attribute.

    ``DOLLAR`` is the paper's name for a fixed-point currency amount; we model
    it as a float but keep the distinct type tag so codecs can choose a
    fixed-point wire encoding.
    """

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    DOLLAR = "dollar"
    BOOLEAN = "boolean"

    @property
    def python_types(self) -> Tuple[type, ...]:
        """The Python types accepted for values of this attribute type."""
        return _PYTHON_TYPES[self]

    def coerce(self, value: AttributeValue) -> AttributeValue:
        """Coerce ``value`` to this type, raising :class:`SchemaError` if the
        value is not acceptable.

        Integers are accepted for ``FLOAT``/``DOLLAR`` attributes and widened;
        booleans are *not* accepted for ``INTEGER`` (a common silent-bug
        source, since ``bool`` subclasses ``int`` in Python).
        """
        if self in (AttributeType.FLOAT, AttributeType.DOLLAR):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"expected a number for {self.value}, got {value!r}")
            return float(value)
        if self is AttributeType.INTEGER:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"expected an integer, got {value!r}")
            return value
        if self is AttributeType.BOOLEAN:
            if not isinstance(value, bool):
                raise SchemaError(f"expected a boolean, got {value!r}")
            return value
        if not isinstance(value, str):
            raise SchemaError(f"expected a string, got {value!r}")
        return value

    @property
    def is_ordered(self) -> bool:
        """Whether range tests (``<``, ``>=``, ...) are meaningful."""
        return self is not AttributeType.BOOLEAN


_PYTHON_TYPES: Dict[AttributeType, Tuple[type, ...]] = {
    AttributeType.STRING: (str,),
    AttributeType.INTEGER: (int,),
    AttributeType.FLOAT: (int, float),
    AttributeType.DOLLAR: (int, float),
    AttributeType.BOOLEAN: (bool,),
}

_IDENTIFIER_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


class Attribute:
    """A named, typed slot in an event schema.

    Attributes are value objects: equality and hashing are by ``(name, type)``.
    """

    __slots__ = ("name", "type")

    def __init__(self, name: str, type: AttributeType) -> None:
        if not name or name[0].isdigit() or not set(name) <= _IDENTIFIER_OK:
            raise SchemaError(f"invalid attribute name {name!r}")
        self.name = name
        self.type = type

    def __repr__(self) -> str:
        return f"Attribute({self.name!r}, {self.type.value})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return self.name == other.name and self.type is other.type

    def __hash__(self) -> int:
        return hash((self.name, self.type))


class EventSchema:
    """An ordered, immutable sequence of :class:`Attribute`.

    The order matters: the Parallel Search Tree tests attributes in schema
    order (possibly permuted by an explicit ordering heuristic — see
    :mod:`repro.matching.ordering`), and all brokers must agree on the order.

    Construction accepts either :class:`Attribute` instances or
    ``(name, type)`` pairs where ``type`` may be an :class:`AttributeType` or
    its string value::

        schema = EventSchema([("issue", "string"), ("price", "dollar"),
                              ("volume", "integer")])
    """

    __slots__ = ("_attributes", "_index", "_names")

    def __init__(
        self, attributes: Iterable[Union[Attribute, Tuple[str, Union[AttributeType, str]]]]
    ) -> None:
        attrs: List[Attribute] = []
        for item in attributes:
            if isinstance(item, Attribute):
                attrs.append(item)
            else:
                name, type_spec = item
                if isinstance(type_spec, str):
                    try:
                        type_spec = AttributeType(type_spec)
                    except ValueError:
                        raise SchemaError(f"unknown attribute type {type_spec!r}") from None
                attrs.append(Attribute(name, type_spec))
        if not attrs:
            raise SchemaError("a schema needs at least one attribute")
        index: Dict[str, int] = {}
        for position, attribute in enumerate(attrs):
            if attribute.name in index:
                raise SchemaError(f"duplicate attribute name {attribute.name!r}")
            index[attribute.name] = position
        self._attributes: Tuple[Attribute, ...] = tuple(attrs)
        self._index = index
        self._names: Tuple[str, ...] = tuple(a.name for a in self._attributes)

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        """The schema's attributes, in declaration order."""
        return self._attributes

    @property
    def names(self) -> Tuple[str, ...]:
        """Attribute names in declaration order."""
        return self._names

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, key: Union[int, str]) -> Attribute:
        if isinstance(key, int):
            return self._attributes[key]
        return self._attributes[self.position_of(key)]

    def position_of(self, name: str) -> int:
        """Return the index of the attribute called ``name``.

        Raises :class:`SchemaError` for unknown names.
        """
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"schema has no attribute {name!r}") from None

    def coerce_value(self, name: str, value: AttributeValue) -> AttributeValue:
        """Validate and coerce ``value`` for attribute ``name``."""
        return self[name].type.coerce(value)

    def validate_values(self, values: Mapping[str, AttributeValue]) -> Dict[str, AttributeValue]:
        """Validate a full attribute map for an event of this schema.

        Every schema attribute must be present (the paper's events are
        complete tuples) and no extra keys are allowed.  Returns a new dict of
        coerced values.
        """
        unknown = set(values) - set(self._index)
        if unknown:
            raise SchemaError(f"unknown attributes: {sorted(unknown)!r}")
        missing = set(self._index) - set(values)
        if missing:
            raise SchemaError(f"missing attributes: {sorted(missing)!r}")
        return {name: self.coerce_value(name, values[name]) for name in self.names}

    def tuple_of(self, values: Mapping[str, AttributeValue]) -> Tuple[AttributeValue, ...]:
        """Return the values of a validated mapping in schema order."""
        return tuple(values[name] for name in self.names)

    def reordered(self, names: Sequence[str]) -> "EventSchema":
        """Return a new schema with attributes permuted into ``names`` order.

        ``names`` must be a permutation of this schema's attribute names.
        Used by ordering heuristics to place selective attributes near the
        PST root.
        """
        if sorted(names) != sorted(self.names):
            raise SchemaError(
                f"reorder list {list(names)!r} is not a permutation of {list(self.names)!r}"
            )
        return EventSchema([self[name] for name in names])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventSchema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        inner = ", ".join(f"{a.name}: {a.type.value}" for a in self._attributes)
        return f"EventSchema([{inner}])"


class InformationSpace:
    """A named event schema — the unit of subscription in the paper.

    A broker network may host several information spaces; events and
    subscriptions are always relative to exactly one space.
    """

    __slots__ = ("name", "schema")

    def __init__(self, name: str, schema: EventSchema) -> None:
        if not name:
            raise SchemaError("information space name must be non-empty")
        self.name = name
        self.schema = schema

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InformationSpace):
            return NotImplemented
        return self.name == other.name and self.schema == other.schema

    def __hash__(self) -> int:
        return hash((self.name, self.schema))

    def __repr__(self) -> str:
        return f"InformationSpace({self.name!r}, {self.schema!r})"


def stock_trade_schema() -> EventSchema:
    """The paper's running example: ``[issue, price, volume]``."""
    return EventSchema(
        [
            ("issue", AttributeType.STRING),
            ("price", AttributeType.DOLLAR),
            ("volume", AttributeType.INTEGER),
        ]
    )


def uniform_schema(
    num_attributes: int, prefix: str = "a", type: AttributeType = AttributeType.INTEGER
) -> EventSchema:
    """A synthetic schema ``[a1, a2, ..., aN]`` as used throughout the paper's
    simulations (e.g. the five-attribute schema of Figure 2 and the
    ten-attribute schemas of Charts 1 and 2)."""
    if num_attributes < 1:
        raise SchemaError("num_attributes must be >= 1")
    return EventSchema([(f"{prefix}{i + 1}", type) for i in range(num_attributes)])
