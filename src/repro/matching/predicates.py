"""Subscription predicates.

A content-based subscription is a *conjunction* of per-attribute tests against
an event schema, e.g. ``issue='IBM' & price<120 & volume>1000``.  Attributes
not mentioned in the conjunction are "don't care" (drawn as ``*`` in the
paper's Parallel Search Tree figures).

The PST of Section 2 primarily handles equality tests and don't-cares; range
tests are "also possible" and we support them throughout (a range test node
may have several satisfied outgoing edges, which the parallel subsearch
handles naturally).

Classes
-------
* :class:`AttributeTest` — abstract per-attribute test.
* :class:`EqualityTest`, :class:`RangeTest`, :class:`DontCare` — concrete tests.
* :class:`Predicate` — conjunction of tests, aligned to a schema.
* :class:`Subscription` — a predicate plus the subscriber's identity.
"""

from __future__ import annotations

import enum
import itertools
import operator
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import PredicateError
from repro.matching.events import Event
from repro.matching.schema import AttributeValue, EventSchema


class RangeOp(enum.Enum):
    """Comparison operator of a :class:`RangeTest`."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    NE = "!="

    @property
    def function(self) -> Callable[[AttributeValue, AttributeValue], bool]:
        return _RANGE_FUNCTIONS[self]

    @classmethod
    def from_symbol(cls, symbol: str) -> "RangeOp":
        try:
            return cls(symbol)
        except ValueError:
            raise PredicateError(f"unknown comparison operator {symbol!r}") from None


_RANGE_FUNCTIONS: Dict[RangeOp, Callable[[AttributeValue, AttributeValue], bool]] = {
    RangeOp.LT: operator.lt,
    RangeOp.LE: operator.le,
    RangeOp.GT: operator.gt,
    RangeOp.GE: operator.ge,
    RangeOp.NE: operator.ne,
}


class AttributeTest:
    """A test applied to a single attribute's value.

    Subclasses must be immutable, hashable value objects: the PST deduplicates
    branches by test equality.
    """

    __slots__ = ()

    def evaluate(self, value: AttributeValue) -> bool:
        """Whether ``value`` satisfies this test."""
        raise NotImplementedError

    @property
    def is_dont_care(self) -> bool:
        """Whether this is the ``*`` (always-true) test."""
        return False

    def describe(self, attribute_name: str) -> str:
        """Human-readable form used in ``repr`` and error messages."""
        raise NotImplementedError


class DontCare(AttributeTest):
    """The ``*`` test: satisfied by every value.

    A singleton for convenience — use :data:`DONT_CARE`.
    """

    __slots__ = ()

    def evaluate(self, value: AttributeValue) -> bool:
        return True

    @property
    def is_dont_care(self) -> bool:
        return True

    def describe(self, attribute_name: str) -> str:
        return f"{attribute_name}=*"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DontCare)

    def __hash__(self) -> int:
        return hash(DontCare)

    def __repr__(self) -> str:
        return "DontCare()"


#: Shared don't-care instance.
DONT_CARE = DontCare()


class EqualityTest(AttributeTest):
    """``attribute = value``, the workhorse test of the paper's PST."""

    __slots__ = ("value",)

    def __init__(self, value: AttributeValue) -> None:
        self.value = value

    def evaluate(self, value: AttributeValue) -> bool:
        return value == self.value

    def describe(self, attribute_name: str) -> str:
        return f"{attribute_name}={self.value!r}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EqualityTest):
            return NotImplemented
        return self.value == other.value and type(self.value) is type(other.value)

    def __hash__(self) -> int:
        return hash((EqualityTest, self.value))

    def __repr__(self) -> str:
        return f"EqualityTest({self.value!r})"


class RangeTest(AttributeTest):
    """``attribute <op> bound`` for an ordered attribute type.

    Several range tests over the same attribute may be conjoined at predicate
    level (``price > 100 & price < 120``); they are normalized into a single
    :class:`IntervalTest` when possible.
    """

    __slots__ = ("op", "bound")

    def __init__(self, op: RangeOp, bound: AttributeValue) -> None:
        if isinstance(bound, bool):
            raise PredicateError("range tests are not defined for booleans")
        self.op = op
        self.bound = bound

    def evaluate(self, value: AttributeValue) -> bool:
        try:
            return self.op.function(value, self.bound)
        except TypeError:
            return False

    def describe(self, attribute_name: str) -> str:
        return f"{attribute_name}{self.op.value}{self.bound!r}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeTest):
            return NotImplemented
        return self.op is other.op and self.bound == other.bound

    def __hash__(self) -> int:
        return hash((RangeTest, self.op, self.bound))

    def __repr__(self) -> str:
        return f"RangeTest({self.op.value!r}, {self.bound!r})"


class IntervalTest(AttributeTest):
    """A normalized conjunction of range tests: ``low <? attr <? high``.

    ``low``/``high`` of ``None`` mean unbounded on that side.  ``low_closed``
    and ``high_closed`` select ``<=`` vs ``<`` at each end.  ``excluded``
    holds values ruled out by ``!=`` tests.
    """

    __slots__ = ("low", "high", "low_closed", "high_closed", "excluded")

    def __init__(
        self,
        low: Optional[AttributeValue] = None,
        high: Optional[AttributeValue] = None,
        *,
        low_closed: bool = True,
        high_closed: bool = True,
        excluded: Tuple[AttributeValue, ...] = (),
    ) -> None:
        self.low = low
        self.high = high
        self.low_closed = low_closed
        self.high_closed = high_closed
        self.excluded = tuple(sorted(set(excluded), key=repr))

    def evaluate(self, value: AttributeValue) -> bool:
        try:
            if self.low is not None:
                if self.low_closed:
                    if value < self.low:
                        return False
                elif value <= self.low:
                    return False
            if self.high is not None:
                if self.high_closed:
                    if value > self.high:
                        return False
                elif value >= self.high:
                    return False
        except TypeError:
            return False
        return value not in self.excluded

    @property
    def is_empty(self) -> bool:
        """Whether no value can satisfy the interval (e.g. ``x>5 & x<3``)."""
        if self.low is None or self.high is None:
            return False
        try:
            if self.low > self.high:
                return True
            if self.low == self.high and not (self.low_closed and self.high_closed):
                return True
        except TypeError:
            return True
        return False

    def describe(self, attribute_name: str) -> str:
        parts = []
        if self.low is not None:
            parts.append(f"{attribute_name}{'>=' if self.low_closed else '>'}{self.low!r}")
        if self.high is not None:
            parts.append(f"{attribute_name}{'<=' if self.high_closed else '<'}{self.high!r}")
        for value in self.excluded:
            parts.append(f"{attribute_name}!={value!r}")
        return " & ".join(parts) if parts else f"{attribute_name}=*"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalTest):
            return NotImplemented
        return (
            self.low == other.low
            and self.high == other.high
            and self.low_closed == other.low_closed
            and self.high_closed == other.high_closed
            and self.excluded == other.excluded
        )

    def __hash__(self) -> int:
        return hash(
            (IntervalTest, self.low, self.high, self.low_closed, self.high_closed, self.excluded)
        )

    def __repr__(self) -> str:
        return (
            f"IntervalTest(low={self.low!r}, high={self.high!r}, "
            f"low_closed={self.low_closed}, high_closed={self.high_closed}, "
            f"excluded={self.excluded!r})"
        )


def normalize_tests(tests: Sequence[AttributeTest]) -> AttributeTest:
    """Combine several tests on one attribute into a single equivalent test.

    * no tests / only don't-cares → :data:`DONT_CARE`
    * a single concrete test → itself
    * multiple equalities → the equality if they agree, else an empty interval
    * ranges (and ``!=``) → an :class:`IntervalTest`
    * equality + ranges → the equality if consistent, else empty interval

    Raises :class:`PredicateError` only for structurally invalid input; a
    logically unsatisfiable conjunction yields an empty interval (callers may
    check :attr:`IntervalTest.is_empty`).
    """
    concrete = [t for t in tests if not t.is_dont_care]
    if not concrete:
        return DONT_CARE
    if len(concrete) == 1:
        return concrete[0]

    equalities = [t for t in concrete if isinstance(t, EqualityTest)]
    others = [t for t in concrete if not isinstance(t, EqualityTest)]

    if equalities:
        value = equalities[0].value
        for test in equalities[1:]:
            if test.value != value:
                return IntervalTest(low=1, high=0)  # canonical empty interval
        if all(t.evaluate(value) for t in others):
            return EqualityTest(value)
        return IntervalTest(low=1, high=0)

    low: Optional[AttributeValue] = None
    high: Optional[AttributeValue] = None
    low_closed = True
    high_closed = True
    excluded: list = []
    for test in others:
        if isinstance(test, IntervalTest):
            if test.low is not None and (
                low is None or test.low > low or (test.low == low and not test.low_closed)
            ):
                low, low_closed = test.low, test.low_closed
            if test.high is not None and (
                high is None or test.high < high or (test.high == high and not test.high_closed)
            ):
                high, high_closed = test.high, test.high_closed
            excluded.extend(test.excluded)
            continue
        if not isinstance(test, RangeTest):
            raise PredicateError(f"cannot normalize test {test!r}")
        if test.op is RangeOp.NE:
            excluded.append(test.bound)
        elif test.op in (RangeOp.GT, RangeOp.GE):
            closed = test.op is RangeOp.GE
            if low is None or test.bound > low or (test.bound == low and not closed):
                low, low_closed = test.bound, closed
        else:
            closed = test.op is RangeOp.LE
            if high is None or test.bound < high or (test.bound == high and not closed):
                high, high_closed = test.bound, closed
    return IntervalTest(
        low, high, low_closed=low_closed, high_closed=high_closed, excluded=tuple(excluded)
    )


def value_tuple_test(predicate: "Predicate") -> Callable[[Tuple[AttributeValue, ...]], bool]:
    """A fast ``values_tuple -> bool`` evaluator of ``predicate``.

    Built for scan loops that test one predicate against many resident
    value tuples — the surgical cache repair in the sharded and aggregating
    engines runs it once per cached entry on every churn op.  The common
    case — equality tests, which miss on the first compare for almost every
    tuple — is plain tuple compares with no method calls; only genuinely
    general tests (ranges, intervals) fall back to ``evaluate``.
    Don't-cares accept everything and are skipped outright.

    Tuples must be full event value tuples in schema order
    (:meth:`~repro.matching.events.Event.as_tuple`).
    """
    equalities: list = []
    general: list = []
    for position, test in enumerate(predicate.tests):
        if test.is_dont_care:
            continue
        if type(test) is EqualityTest:
            equalities.append((position, test.value))
        else:
            general.append((position, test))
    if not equalities:
        return lambda values: all(test.evaluate(values[i]) for i, test in general)
    (first_position, first_value), rest = equalities[0], equalities[1:]

    def matches_values(values: Tuple[AttributeValue, ...]) -> bool:
        if values[first_position] != first_value:
            return False
        for position, value in rest:
            if values[position] != value:
                return False
        for position, test in general:
            if not test.evaluate(values[position]):
                return False
        return True

    return matches_values


class Predicate:
    """A conjunction of per-attribute tests aligned to a schema.

    Internally a tuple of :class:`AttributeTest`, one per schema attribute in
    schema order, with :data:`DONT_CARE` filling unmentioned attributes.
    """

    __slots__ = ("schema", "_tests")

    def __init__(
        self,
        schema: EventSchema,
        tests: Mapping[str, Union[AttributeTest, Sequence[AttributeTest]]],
    ) -> None:
        unknown = set(tests) - set(schema.names)
        if unknown:
            raise PredicateError(f"predicate mentions unknown attributes: {sorted(unknown)!r}")
        slots: list = []
        for attribute in schema:
            given = tests.get(attribute.name, DONT_CARE)
            if isinstance(given, AttributeTest):
                test = given
            else:
                test = normalize_tests(list(given))
            if isinstance(test, (RangeTest, IntervalTest)) and not attribute.type.is_ordered:
                raise PredicateError(f"range test on unordered attribute {attribute.name!r}")
            if isinstance(test, EqualityTest):
                test = EqualityTest(attribute.type.coerce(test.value))
            slots.append(test)
        self.schema = schema
        self._tests: Tuple[AttributeTest, ...] = tuple(slots)

    @classmethod
    def from_values(cls, schema: EventSchema, **values: AttributeValue) -> "Predicate":
        """Shorthand for an all-equality predicate:
        ``Predicate.from_values(schema, issue="IBM", volume=100)``."""
        return cls(schema, {name: EqualityTest(value) for name, value in values.items()})

    @property
    def tests(self) -> Tuple[AttributeTest, ...]:
        """Tests in schema order (don't-cares included)."""
        return self._tests

    def test_for(self, name: str) -> AttributeTest:
        """The test on attribute ``name``."""
        return self._tests[self.schema.position_of(name)]

    def matches(self, event: Event) -> bool:
        """Brute-force evaluation of the conjunction against ``event``.

        This is the reference semantics that the PST (and link matching on
        top of it) must agree with exactly.
        """
        if event.schema != self.schema:
            raise PredicateError("event and predicate use different schemas")
        values = event.as_tuple()
        return all(test.evaluate(value) for test, value in zip(self._tests, values))

    @property
    def num_dont_cares(self) -> int:
        """How many attributes this predicate leaves unconstrained."""
        return sum(1 for t in self._tests if t.is_dont_care)

    @property
    def is_satisfiable(self) -> bool:
        """False if any per-attribute test is an empty interval."""
        return not any(isinstance(t, IntervalTest) and t.is_empty for t in self._tests)

    def describe(self) -> str:
        """The predicate as a subscription-language expression."""
        parts = [
            test.describe(attribute.name)
            for attribute, test in zip(self.schema, self._tests)
            if not test.is_dont_care
        ]
        return " & ".join(parts) if parts else "*"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return self.schema == other.schema and self._tests == other._tests

    def __hash__(self) -> int:
        return hash((self.schema, self._tests))

    def __repr__(self) -> str:
        return f"Predicate({self.describe()})"


_subscription_ids = itertools.count(1)


class Subscription:
    """A predicate plus the identity of the subscriber that registered it.

    ``subscriber`` is an opaque identifier — a client name in the prototype,
    a ``(broker, client)`` pair in the simulator.  ``subscription_id`` is a
    process-local unique id used to address this particular registration
    (a subscriber may register the same predicate twice, and unsubscribing
    must remove only one registration).
    """

    __slots__ = ("predicate", "subscriber", "subscription_id")

    def __init__(
        self, predicate: Predicate, subscriber: str, subscription_id: Optional[int] = None
    ) -> None:
        self.predicate = predicate
        self.subscriber = subscriber
        self.subscription_id = (
            subscription_id if subscription_id is not None else next(_subscription_ids)
        )

    def matches(self, event: Event) -> bool:
        """Whether the subscription's predicate matches ``event``."""
        return self.predicate.matches(event)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Subscription):
            return NotImplemented
        return self.subscription_id == other.subscription_id

    def __hash__(self) -> int:
        return hash(self.subscription_id)

    def __repr__(self) -> str:
        return (
            f"Subscription(#{self.subscription_id} "
            f"{self.subscriber!r}: {self.predicate.describe()})"
        )
