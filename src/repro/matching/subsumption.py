"""Predicate subsumption (covering) — the relation SIENA-style systems use.

Predicate ``p`` *subsumes* ``q`` when every event matching ``q`` also
matches ``p``.  The paper's related work notes SIENA "filters events before
forwarding them on to servers"; covering relations are how such systems
prune redundant filters.  Here subsumption powers an analysis pass
(:func:`redundant_subscriptions`): a subscription is routing-redundant when
another subscription *from the same subscriber* covers it — removing it
cannot change any delivery decision.

For conjunctive predicates the check decomposes per attribute: ``p``
subsumes ``q`` iff for every attribute, ``p``'s test accepts every value
``q``'s test accepts.  Per-test containment is decided exactly for the test
algebra this library uses (don't-care, equality, one-sided ranges, and
normalized intervals with exclusions).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import PredicateError
from repro.matching.predicates import (
    AttributeTest,
    EqualityTest,
    IntervalTest,
    Predicate,
    RangeOp,
    RangeTest,
    Subscription,
)
from repro.matching.schema import Attribute, AttributeType


def _is_plain_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _canonicalize_integer_bounds(attribute: Attribute, test: AttributeTest) -> AttributeTest:
    """Close strict bounds over INTEGER attributes: ``x < 4`` accepts exactly
    the same integers as ``x <= 3`` (and ``x > 2`` the same as ``x >= 3``),
    but the literal bound comparison in :func:`_interval_contains` cannot see
    that.  Canonicalizing to the closed form keeps the per-test containment
    check complete on the exclusion-free sublanguage."""
    if attribute.type is not AttributeType.INTEGER:
        return test
    if isinstance(test, RangeTest) and _is_plain_int(test.bound):
        if test.op is RangeOp.LT:
            return RangeTest(RangeOp.LE, test.bound - 1)
        if test.op is RangeOp.GT:
            return RangeTest(RangeOp.GE, test.bound + 1)
        return test
    if isinstance(test, IntervalTest):
        low, low_closed = test.low, test.low_closed
        high, high_closed = test.high, test.high_closed
        if low is not None and not low_closed and _is_plain_int(low):
            low, low_closed = low + 1, True
        if high is not None and not high_closed and _is_plain_int(high):
            high, high_closed = high - 1, True
        if (low, low_closed, high, high_closed) != (
            test.low,
            test.low_closed,
            test.high,
            test.high_closed,
        ):
            return IntervalTest(
                low,
                high,
                low_closed=low_closed,
                high_closed=high_closed,
                excluded=test.excluded,
            )
    return test


def _as_interval(test: AttributeTest) -> Optional[IntervalTest]:
    """Normalize a range-ish test to an interval; None for other kinds."""
    if isinstance(test, IntervalTest):
        return test
    if isinstance(test, RangeTest):
        if test.op is RangeOp.LT:
            return IntervalTest(high=test.bound, high_closed=False)
        if test.op is RangeOp.LE:
            return IntervalTest(high=test.bound)
        if test.op is RangeOp.GT:
            return IntervalTest(low=test.bound, low_closed=False)
        if test.op is RangeOp.GE:
            return IntervalTest(low=test.bound)
        return IntervalTest(excluded=(test.bound,))
    return None


def canonical_test(attribute: Attribute, test: AttributeTest) -> AttributeTest:
    """The canonical form of one attribute's test — the bound extraction the
    covering machinery keys on.

    Strict integer bounds close (``x < 4`` ≡ ``x <= 3``) and one-sided range
    tests normalize to intervals, so tests that accept the same values
    compare and hash equal.  Equality tests and don't-cares are already
    canonical and pass through unchanged (identity-preserving, so callers
    can detect "nothing changed" with ``is``).  This is the per-attribute
    step of :func:`repro.matching.aggregation.canonicalize_predicate`, and
    the reason a canonical predicate only ever carries equality tests,
    closed-bound :class:`~repro.matching.predicates.IntervalTest`\\ s, or
    don't-cares — the three shapes
    :class:`~repro.matching.covering_index.CoveringIndex` indexes.
    """
    canonical = _canonicalize_integer_bounds(attribute, test)
    if isinstance(canonical, RangeTest):
        interval = _as_interval(canonical)
        if interval is not None:
            return interval
    return canonical


def _interval_contains(outer: IntervalTest, inner: IntervalTest) -> bool:
    """Whether every value accepted by ``inner`` is accepted by ``outer``.

    Conservative on the exclusion lists: an outer exclusion not provably
    outside the inner set makes the answer False (never a false positive).
    """
    try:
        if outer.low is not None:
            if inner.low is None:
                return False
            if inner.low < outer.low:
                return False
            if inner.low == outer.low and inner.low_closed and not outer.low_closed:
                return False
        if outer.high is not None:
            if inner.high is None:
                return False
            if inner.high > outer.high:
                return False
            if inner.high == outer.high and inner.high_closed and not outer.high_closed:
                return False
    except TypeError:
        return False
    for excluded in outer.excluded:
        if inner.evaluate(excluded):
            return False
    return True


def covers(general: AttributeTest, specific: AttributeTest) -> bool:
    """Whether ``general`` accepts every value ``specific`` accepts."""
    if general.is_dont_care:
        return True
    if specific.is_dont_care:
        return False  # nothing short of don't-care covers everything
    if isinstance(specific, EqualityTest):
        return general.evaluate(specific.value)
    specific_interval = _as_interval(specific)
    if specific_interval is None:
        raise PredicateError(f"cannot reason about test {specific!r}")
    if specific_interval.is_empty:
        return True  # an unsatisfiable test is covered by anything
    if isinstance(general, EqualityTest):
        # An equality covers a non-empty interval only if the interval is
        # the single point {value}; detectable when bounds pin one value.
        return (
            specific_interval.low is not None
            and specific_interval.low == specific_interval.high
            and specific_interval.low_closed
            and specific_interval.high_closed
            and specific_interval.low == general.value
            and not specific_interval.excluded
        )
    general_interval = _as_interval(general)
    if general_interval is None:
        raise PredicateError(f"cannot reason about test {general!r}")
    return _interval_contains(general_interval, specific_interval)


def predicate_subsumes(general: Predicate, specific: Predicate) -> bool:
    """Whether ``general`` matches every event ``specific`` matches.

    Sound and, for this library's conjunctive test algebra, complete except
    for exclusion-list corner cases where it errs toward False.
    """
    if general.schema != specific.schema:
        raise PredicateError("predicates over different schemas are incomparable")
    if not specific.is_satisfiable:
        return True
    return all(
        covers(
            _canonicalize_integer_bounds(attribute, general_test),
            _canonicalize_integer_bounds(attribute, specific_test),
        )
        for attribute, general_test, specific_test in zip(
            general.schema.attributes, general.tests, specific.tests
        )
    )


def redundant_subscriptions(
    subscriptions: Sequence[Subscription],
) -> List[Tuple[Subscription, Subscription]]:
    """Find subscriptions covered by another from the *same subscriber*.

    Returns ``(redundant, covered_by)`` pairs.  Removing a redundant
    subscription changes no delivery decision: its subscriber already
    receives every one of its events through the covering subscription.
    Mutual-coverage ties (identical predicates) keep the older registration
    and mark the newer one redundant.
    """
    by_subscriber: Dict[str, List[Subscription]] = {}
    for subscription in subscriptions:
        by_subscriber.setdefault(subscription.subscriber, []).append(subscription)
    redundant: List[Tuple[Subscription, Subscription]] = []
    for group in by_subscriber.values():
        ordered = sorted(group, key=lambda s: s.subscription_id)
        flagged: Set[int] = set()
        for candidate in ordered:
            for other in ordered:
                if other is candidate or other.subscription_id in flagged:
                    continue
                if not predicate_subsumes(other.predicate, candidate.predicate):
                    continue
                mutual = predicate_subsumes(candidate.predicate, other.predicate)
                if mutual and candidate.subscription_id < other.subscription_id:
                    continue  # identical predicates: keep the older one
                flagged.add(candidate.subscription_id)
                redundant.append((candidate, other))
                break
    return redundant
