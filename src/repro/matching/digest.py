"""Match digests: the match-once forwarding summary attached to events.

The paper replicates the full subscription set at every broker (Section
3.1), so the set of subscriptions an event matches is *identical* at every
hop — only the per-broker link annotations differ.  A :class:`MatchDigest`
captures that hop-invariant half once, at the publisher's broker: the
sorted ids of the matched subscriptions (the compiled leaves' member ids),
tagged with the minting router's subscription-set **epoch** and a
**checksum** of the set itself.  Downstream brokers turn the digest into
their own link mask with one OR per matched leaf over the precomputed
leaf→link-bits projection table (see ``MatcherEngine.project_links``)
instead of re-running the refinement kernel.

A digest is only valid against the *same* subscription set it was minted
from; consumers must verify both tags and fall back to full matching on any
mismatch (see ``docs/performance.md``, "Match-once forwarding").

Wire form (``to_bytes``/``from_bytes``): the id payload is either the
sorted id list (8 bytes per id) or, when the ids are dense, a packed bitmap
over the ``[base, max]`` id span — whichever is smaller.  The crossover is
mechanical: a bitmap costs ``span/8`` bytes plus a fixed base+length
header, an id list costs 8 bytes per id, so the bitmap wins as soon as the
matched ids cover more than ~1/64th of their span.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.errors import CodecError

#: Wire cost of one id in the sparse (id-list) encoding.
ID_BYTES = 8

#: Fixed wire cost of the dense encoding's base-id + bitmap-length header.
DENSE_HEADER_BYTES = 12

#: kind byte + epoch (u64) + checksum (u64) — paid by both encodings.
_COMMON_HEADER_BYTES = 1 + 8 + 8

_KIND_IDS = 0
_KIND_BITMAP = 1

_U64_MASK = (1 << 64) - 1

#: Fibonacci-hash multiplier used to mix subscription ids into the set
#: checksum — raw ids are small consecutive ints whose plain XOR collides
#: trivially (1 ^ 2 ^ 3 == 0).
_MIX = 0x9E3779B97F4A7C15


def mix_subscription_id(subscription_id: int) -> int:
    """The 64-bit mixed form of one subscription id, as folded (XOR) into a
    router's subscription-set checksum.  XOR of mixed ids is order- and
    history-independent: add then remove restores the old checksum."""
    return (subscription_id * _MIX) & _U64_MASK


class MatchDigest:
    """An epoch-tagged summary of one event's matched subscription set."""

    __slots__ = ("epoch", "checksum", "ids")

    def __init__(self, epoch: int, checksum: int, ids: Iterable[int]) -> None:
        self.epoch = epoch
        self.checksum = checksum & _U64_MASK
        self.ids: Tuple[int, ...] = tuple(ids)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatchDigest):
            return NotImplemented
        return (
            self.epoch == other.epoch
            and self.checksum == other.checksum
            and self.ids == other.ids
        )

    def __hash__(self) -> int:
        return hash((self.epoch, self.checksum, self.ids))

    # ------------------------------------------------------------------
    # Encoding

    @property
    def dense(self) -> bool:
        """Whether the bitmap encoding is smaller than the id list."""
        if len(self.ids) < 2:
            return False
        span = self.ids[-1] - self.ids[0] + 1
        return DENSE_HEADER_BYTES + (span + 7) // 8 < ID_BYTES * len(self.ids)

    @property
    def encoded_size_bytes(self) -> int:
        """On-the-wire size of :meth:`to_bytes` (for cost accounting)."""
        if self.dense:
            span = self.ids[-1] - self.ids[0] + 1
            return _COMMON_HEADER_BYTES + DENSE_HEADER_BYTES + (span + 7) // 8
        return _COMMON_HEADER_BYTES + 4 + ID_BYTES * len(self.ids)

    def to_bytes(self) -> bytes:
        """Serialize (kind byte + epoch + checksum + id payload)."""
        epoch = self.epoch & _U64_MASK
        if self.dense:
            base = self.ids[0]
            bitmap = 0
            for subscription_id in self.ids:
                bitmap |= 1 << (subscription_id - base)
            bitmap_bytes = bitmap.to_bytes((bitmap.bit_length() + 7) // 8, "little")
            return (
                bytes((_KIND_BITMAP,))
                + epoch.to_bytes(8, "big")
                + self.checksum.to_bytes(8, "big")
                + base.to_bytes(8, "big")
                + len(bitmap_bytes).to_bytes(4, "big")
                + bitmap_bytes
            )
        parts = [
            bytes((_KIND_IDS,)),
            epoch.to_bytes(8, "big"),
            self.checksum.to_bytes(8, "big"),
            len(self.ids).to_bytes(4, "big"),
        ]
        parts.extend(i.to_bytes(8, "big") for i in self.ids)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "MatchDigest":
        """Inverse of :meth:`to_bytes`; raises :class:`CodecError` on any
        malformed input."""
        if len(payload) < _COMMON_HEADER_BYTES:
            raise CodecError("match digest truncated")
        kind = payload[0]
        epoch = int.from_bytes(payload[1:9], "big")
        checksum = int.from_bytes(payload[9:17], "big")
        body = payload[_COMMON_HEADER_BYTES:]
        if kind == _KIND_IDS:
            if len(body) < 4:
                raise CodecError("match digest truncated")
            count = int.from_bytes(body[:4], "big")
            if len(body) != 4 + ID_BYTES * count:
                raise CodecError("match digest id list length mismatch")
            ids = tuple(
                int.from_bytes(body[4 + ID_BYTES * i : 4 + ID_BYTES * (i + 1)], "big")
                for i in range(count)
            )
            return cls(epoch, checksum, ids)
        if kind == _KIND_BITMAP:
            if len(body) < DENSE_HEADER_BYTES:
                raise CodecError("match digest truncated")
            base = int.from_bytes(body[:8], "big")
            length = int.from_bytes(body[8:12], "big")
            if len(body) != DENSE_HEADER_BYTES + length:
                raise CodecError("match digest bitmap length mismatch")
            bitmap = int.from_bytes(body[DENSE_HEADER_BYTES:], "little")
            ids = []
            while bitmap:
                low = bitmap & -bitmap
                ids.append(base + low.bit_length() - 1)
                bitmap ^= low
            return cls(epoch, checksum, tuple(ids))
        raise CodecError(f"unknown match digest kind byte {kind}")

    def __repr__(self) -> str:
        return (
            f"MatchDigest(epoch={self.epoch}, {len(self.ids)} ids"
            f"{', dense' if self.dense else ''})"
        )
