"""The columnar backend: whole-frontier, level-major bulk execution.

Where ``interp`` walks one ``(node, event-subset)`` entry at a time, this
backend advances the *entire* frontier one tree level per iteration.  The
numpy kernel represents each frontier entry as a node paired with a
**uint64 event bitmask** (batches wider than 64 events are processed in
64-event chunks): bit ``e`` of ``masks[k]`` says event ``e``'s single-event
search would visit ``nodes[k]``.  Because the compiled structure is a tree,
every node is reached from exactly one parent, so the frontier holds each
node at most once — a ``*``-chain shared by the whole batch costs one entry
per level, the same sharing ``interp``'s member-list subsets exploit, but
in fixed-width machine words instead of Python lists.

Per level the kernel

1. records the mask column (steps per event fall out at the end as one
   bit-count over the concatenated columns — each set bit is one node visit
   of one event, exactly the unit ``interp`` counts),
2. drains leaf entries into the per-event match lists (bit-iterating the
   mask), and
3. computes every child entry at once: value-table *and* star edges are
   gathered per frontier node from one flat edge array (``edge_start``
   ranges), then each edge's child mask is
   ``parent_mask & vid_masks[edge_pvid]`` where ``vid_masks`` packs, per
   ``(position, interned value)`` pair, the bitmask of batch events
   carrying that value — built once per chunk in a few hundred Python ops.
   Star edges key a sentinel row holding the full batch mask (``*`` accepts
   everyone), which folds them into the same gather.  Range tests (absent
   from the equality-heavy benchmark workloads) run as a scalar
   bit-iterating filter that calls ``AttributeTest.evaluate`` exactly as
   ``interp`` does.

Child entries are emitted branch-kind-major (value children, then range
children, then star children) rather than in per-parent BFS order —
deterministic, but not ``interp``'s visit order.  That is within contract:
``interp``'s own batch kernel already orders match lists differently than
its single-event kernel (subset splitting visits shared nodes once), so the
cross-backend contract, pinned by the property suite, is the one the
engines already guarantee between batch and single paths — identical match
*sets*, identical per-event step counts, identical masks.  Step counts stay
bit-for-bit because the set of ``(node, event)`` visits is identical: an
event's bit survives a root-to-node path exactly when every edge on the
path accepts its value, which is precisely the single-event reachability
condition.

The zero-dependency fallback keeps the level-major structure over
``array('q')`` columns with one ``(node, event)`` entry per pair (no numpy
import anywhere on that path).  Both paths read only the program's record
surface, so they also run inside procpool workers over a
:class:`~repro.matching.backends.procpool.ProgramImage`.

The link refinement (Section 3.3) is different: its early exits depend on
the mask accumulated *so far*, so the search itself is inherently
sequential and cannot be frontier-vectorized without changing the step
counts the property suite pins.  The native link kernels therefore split
the work: the **columnar walk answers edge acceptance** — one level-major
pass per 64-event chunk produces, per node, the bitmask of events whose
match walk reaches it — and a per-event **DFS replay** then re-runs
``interp``'s exact frame machine, answering "is this child applicable?"
with one bit test instead of a table lookup / ``evaluate`` call.  The
replay enters the same nodes in the same order with the same early exits,
so refined masks *and* step counts are bit-for-bit ``interp``'s.  (The
edge-acceptance identity: the DFS only asks about children of nodes it
entered, every entered node lies on an accepted path, and a child's reach
bit is exactly "parent reached AND edge accepts" — so filtering the
record-ordered child list by reach bits reproduces ``interp``'s child
list verbatim.)

The derived columnar index is cached in ``program.backend_state`` keyed by
``program.generation``; any patch or re-annotation bumps the generation and
the next batch rebuilds it lazily.  The single-event ``match`` delegates to
``interp`` — vectorization pays off across a batch, not within one event's
walk — while single-event ``match_links`` runs as a batch of one through
the native path.
"""

from __future__ import annotations

from array import array
from operator import itemgetter
from typing import List, Optional, Sequence, Tuple

from repro.errors import RoutingError
from repro.matching.backends import KernelBackend
from repro.matching.backends.interp import InterpBackend

try:  # numpy is optional by design: the fallback is part of the contract
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via force_fallback tests
    _np = None

#: ``backend_state`` slot the columnar index lives under.
_STATE_KEY = "vector.index"

#: ``backend_state`` slot the link-replay child lists live under.
_LINKS_STATE_KEY = "vector.links"

#: Numpy-kernel chunk width: one event per uint64 mask bit.
_CHUNK = 64


class _ColumnarIndex:
    """Per-generation columnar view of one program's records (numpy only —
    the zero-dep fallback walks ``program._records`` directly).

    Value-table edges are flattened node-major into ``edge_pvid`` /
    ``edge_children`` with per-node ranges in ``edge_start`` (length
    ``n + 1``), so a whole frontier's edges gather with one ragged take.
    ``edge_pvid`` packs each edge's key as ``position * num_vids + vid``,
    the row index into the kernel's per-chunk ``vid_masks`` table.  Ranges
    and leaf subscription lists keep their Python form — ranges must call
    ``AttributeTest.evaluate`` (whose TypeError semantics bulk ops cannot
    reproduce) and leaf lists are extended into result lists as-is.

    This build sits on the cold path (first batch after every recompile),
    so columns come from C-level ``map(itemgetter, ...)`` transposes rather
    than a per-record Python loop — at ~100k nodes the difference is real
    milliseconds against the cold-throughput gate.
    """

    __slots__ = (
        "generation",
        "positions",
        "leaf_subs",
        "range_lists",
        "has_ranges",
        "any_ranges",
        "edge_start",
        "edge_starts_hi",
        "edge_pvid",
        "edge_children",
        "width",
        "num_vids",
        "star_row",
    )

    def __init__(self, program) -> None:
        np = _np
        records = program._records
        n = len(records)
        self.generation = program.generation
        self.leaf_subs: List[object] = list(map(itemgetter(4), records))
        range_lists: List[object] = list(map(itemgetter(2), records))
        self.range_lists = range_lists
        self.any_ranges = any(ranges is not None for ranges in range_lists)
        self.has_ranges = (
            np.fromiter(
                (ranges is not None for ranges in range_lists), dtype=bool, count=n
            )
            if self.any_ranges
            else None
        )
        positions = np.fromiter(map(itemgetter(0), records), dtype=np.int64, count=n)
        self.positions = positions
        self.width = int(positions.max()) + 1 if n else 0
        num_vids = len(program.value_ids)
        self.num_vids = num_vids
        # The star branch is folded into the edge arrays as one extra edge
        # per starred node, keyed to a sentinel vid_masks row the kernel
        # fills with the full batch mask — every event follows a ``*``.
        self.star_row = self.width * num_vids
        counts = [0] * n
        edge_pvid: List[int] = []
        edge_children: List[int] = []
        star_row = self.star_row
        for node, record in enumerate(records):
            if record[0] < 0:
                continue
            edges = 0
            table = record[1]
            if table:
                base = record[0] * num_vids
                edge_pvid.extend(base + vid for vid in table)
                edge_children.extend(table.values())
                edges = len(table)
            star_child = record[3]
            if star_child >= 0:
                edge_pvid.append(star_row)
                edge_children.append(star_child)
                edges += 1
            counts[node] = edges
        edge_start = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.asarray(counts, dtype=np.int64), out=edge_start[1:])
        self.edge_start = edge_start
        self.edge_starts_hi = edge_start[1:]
        self.edge_pvid = np.asarray(edge_pvid, dtype=np.int64)
        self.edge_children = np.asarray(edge_children, dtype=np.int64)


class VectorBackend(KernelBackend):
    """Bulk-array kernel execution (numpy or zero-dep columns).

    ``force_fallback=True`` pins the instance to the no-numpy path; the
    equivalence tests use it so the fallback is exercised even on machines
    where numpy is importable.
    """

    name = "vector"

    def __init__(self, *, force_fallback: bool = False) -> None:
        self._np = None if force_fallback else _np
        self._interp = InterpBackend()

    # -- single-event match: delegation ---------------------------------
    # A single event's match walk has nothing to vectorize over, so this is
    # interp's loop verbatim.

    def match(self, program, values: tuple) -> Tuple[list, int]:
        return self._interp.match(program, values)

    # -- link kernels: columnar reach + exact DFS replay ----------------

    def match_links(
        self, program, values: tuple, yes_bits: int, maybe_bits: int
    ) -> Tuple[int, int]:
        return self.match_links_batch(program, (values,), yes_bits, maybe_bits)[0]

    def match_links_batch(
        self, program, value_tuples: Sequence[tuple], yes_bits: int, maybe_bits: int
    ) -> List[Tuple[int, int]]:
        """Native link refinement (see the module docstring): per chunk, the
        columnar walk computes each node's reached-by bitmask, then a DFS
        replay per event re-runs interp's frame machine over bit tests.
        Masks and step counts are bit-for-bit the interp kernel's."""
        if not value_tuples:
            return []
        child_lists = self._link_child_lists(program)
        results: List[Tuple[int, int]] = []
        for offset in range(0, len(value_tuples), _CHUNK):
            chunk = value_tuples[offset : offset + _CHUNK]
            if self._np is None:
                reach = self._reach_columns(program, chunk)
            else:
                reach = self._reach_chunk_numpy(program, chunk)
            for e, values in enumerate(chunk):
                results.append(
                    self._replay_links(
                        program, child_lists, reach, 1 << e, yes_bits, maybe_bits
                    )
                )
        return results

    def _link_child_lists(self, program) -> List[Optional[Tuple[int, ...]]]:
        """Per node, the children in interp's visit order (value-table
        children first, then range children in slice order, then star) —
        ``None`` marks a leaf.  At most one value child holds any given
        event's reach bit, so filtering this list by reach bits yields
        exactly interp's applicable-children list."""
        state = program.backend_state
        cached = state.get(_LINKS_STATE_KEY)
        if cached is not None and cached[0] == program.generation:
            return cached[1]
        child_lists: List[Optional[Tuple[int, ...]]] = []
        for record in program._records:
            position, table, ranges, star_child, _subs = record
            if position < 0:
                child_lists.append(None)
                continue
            children: List[int] = []
            if table is not None:
                children.extend(table.values())
            if ranges is not None:
                children.extend(child for _test, child in ranges)
            if star_child >= 0:
                children.append(star_child)
            child_lists.append(tuple(children))
        state[_LINKS_STATE_KEY] = (program.generation, child_lists)
        return child_lists

    def _replay_links(
        self,
        program,
        child_lists: List[Optional[Tuple[int, ...]]],
        reach: List[int],
        bit: int,
        yes_bits: int,
        maybe_bits: int,
    ) -> Tuple[int, int]:
        """Interp's refinement frame machine with edge acceptance answered
        by reach-bit tests (same visits, same order, same early exits)."""
        ann_yes = program.ann_yes
        ann_maybe = program.ann_maybe
        steps = 0
        frames: List[list] = []
        current = 0
        cur_yes = yes_bits
        cur_maybe = maybe_bits
        returned_yes = 0
        entering = True
        while True:
            if entering:
                steps += 1
                cur_yes |= cur_maybe & ann_yes[current]
                cur_maybe &= ann_maybe[current]
                if not cur_maybe:
                    returned_yes = cur_yes
                    entering = False
                    continue
                node_children = child_lists[current]
                if node_children is None:
                    raise RoutingError(
                        "leaf annotation left Maybe trits — stale annotation?"
                    )
                children = [c for c in node_children if reach[c] & bit]
                if not children:
                    returned_yes = cur_yes
                    entering = False
                    continue
                frames.append([children, 0, cur_yes, cur_maybe])
                current = children[0]
                continue
            if not frames:
                return returned_yes, steps
            frame = frames[-1]
            frame_maybe = frame[3]
            frame_yes = frame[2] | (frame_maybe & returned_yes)
            frame_maybe &= ~returned_yes
            if not frame_maybe:
                frames.pop()
                returned_yes = frame_yes
                continue
            next_child = frame[1] + 1
            children = frame[0]
            if next_child == len(children):
                frames.pop()
                returned_yes = frame_yes
                continue
            frame[1] = next_child
            frame[2] = frame_yes
            frame[3] = frame_maybe
            current = children[next_child]
            cur_yes = frame_yes
            cur_maybe = frame_maybe
            entering = True

    def _reach_chunk_numpy(self, program, value_tuples: Sequence[tuple]) -> List[int]:
        """Per-node reached-by bitmasks for one <=64-event chunk, via the
        same level-major frontier as the match kernel (minus leaf drains)."""
        np = self._np
        index = self._index(program)
        n = len(value_tuples)
        ids_get = program.value_ids.get
        interned = [
            [ids_get(value, -1) for value in values] for values in value_tuples
        ]
        num_vids = index.num_vids
        width = index.width
        full_mask = (1 << n) - 1
        vid_mask_rows = [0] * (width * num_vids + 1)
        vid_mask_rows[index.star_row] = full_mask
        for e, row in enumerate(interned):
            bit = 1 << e
            base = 0
            for p in range(width):
                vid = row[p]
                if vid >= 0:
                    vid_mask_rows[base + vid] |= bit
                base += num_vids
        vid_masks = np.asarray(vid_mask_rows, dtype=np.uint64)
        reach = [0] * len(program._records)
        nodes = np.zeros(1, dtype=np.int64)
        masks = np.full(1, full_mask, dtype=np.uint64)
        positions_column = index.positions
        edge_start = index.edge_start
        edge_starts_hi = index.edge_starts_hi
        edge_pvid = index.edge_pvid
        edge_children = index.edge_children
        any_ranges = index.any_ranges
        while nodes.size:
            for node, m in zip(nodes.tolist(), masks.tolist()):
                reach[node] = m
            positions = positions_column[nodes]
            interior = positions >= 0
            if not interior.all():
                nodes = nodes[interior]
                masks = masks[interior]
                if not nodes.size:
                    break
                positions = positions[interior]
            starts = edge_start[nodes]
            counts = edge_starts_hi[nodes] - starts
            total = int(counts.sum())
            if total:
                bounds = np.cumsum(counts)
                edge_idx = np.arange(total, dtype=np.int64) + np.repeat(
                    starts - (bounds - counts), counts
                )
                child_masks = np.repeat(masks, counts) & vid_masks[
                    edge_pvid[edge_idx]
                ]
                hit = child_masks != 0
                next_nodes = edge_children[edge_idx[hit]]
                next_masks = child_masks[hit]
            else:
                next_nodes = next_masks = None
            if any_ranges and index.has_ranges[nodes].any():
                range_mask = index.has_ranges[nodes]
                range_children: List[int] = []
                range_masks: List[int] = []
                for node, m, position in zip(
                    nodes[range_mask].tolist(),
                    masks[range_mask].tolist(),
                    positions[range_mask].tolist(),
                ):
                    tests = index.range_lists[node]
                    child_bits = [0] * len(tests)
                    while m:
                        low = m & -m
                        m ^= low
                        value = value_tuples[low.bit_length() - 1][position]
                        for slot, (test, _child) in enumerate(tests):
                            if test.evaluate(value):
                                child_bits[slot] |= low
                    for (_test, child), bits in zip(tests, child_bits):
                        if bits:
                            range_children.append(child)
                            range_masks.append(bits)
                if range_children:
                    range_node_column = np.asarray(range_children, dtype=np.int64)
                    range_mask_column = np.asarray(range_masks, dtype=np.uint64)
                    if next_nodes is None:
                        next_nodes = range_node_column
                        next_masks = range_mask_column
                    else:
                        next_nodes = np.concatenate((next_nodes, range_node_column))
                        next_masks = np.concatenate((next_masks, range_mask_column))
            if next_nodes is None:
                break
            nodes = next_nodes
            masks = next_masks
        return reach

    def _reach_columns(self, program, value_tuples: Sequence[tuple]) -> List[int]:
        """Zero-dependency reach masks: the fallback's level-major walk with
        per-``(node, event)`` entries, OR-ing each visit into the node's
        bitmask."""
        records = program._records
        ids_get = program.value_ids.get
        n = len(value_tuples)
        interned = [
            [ids_get(value, -1) for value in values] for values in value_tuples
        ]
        reach = [0] * len(records)
        nodes = array("q", bytes(8 * n))
        events = array("q", range(n))
        while nodes:
            next_nodes = array("q")
            next_events = array("q")
            push_node = next_nodes.append
            push_event = next_events.append
            for k in range(len(nodes)):
                node = nodes[k]
                e = events[k]
                reach[node] |= 1 << e
                position, table, ranges, star_child, _subs = records[node]
                if position < 0:
                    continue
                if table is not None:
                    child = table.get(interned[e][position])
                    if child is not None:
                        push_node(child)
                        push_event(e)
                if ranges is not None:
                    value = value_tuples[e][position]
                    for test, range_child in ranges:
                        if test.evaluate(value):
                            push_node(range_child)
                            push_event(e)
                if star_child >= 0:
                    push_node(star_child)
                    push_event(e)
            nodes = next_nodes
            events = next_events
        return reach

    # -- the batched kernel ---------------------------------------------

    def _index(self, program) -> _ColumnarIndex:
        state = program.backend_state
        index = state.get(_STATE_KEY)
        if index is None or index.generation != program.generation:
            index = _ColumnarIndex(program)
            state[_STATE_KEY] = index
        return index

    def match_batch(
        self, program, value_tuples: Sequence[tuple]
    ) -> List[Tuple[list, int]]:
        if not value_tuples:
            return []
        if self._np is None:
            return self._match_batch_columns(program, value_tuples)
        if len(value_tuples) <= _CHUNK:
            return self._match_chunk_numpy(program, value_tuples)
        results: List[Tuple[list, int]] = []
        for offset in range(0, len(value_tuples), _CHUNK):
            results.extend(
                self._match_chunk_numpy(
                    program, value_tuples[offset : offset + _CHUNK]
                )
            )
        return results

    def _match_chunk_numpy(
        self, program, value_tuples: Sequence[tuple]
    ) -> List[Tuple[list, int]]:
        np = self._np
        index = self._index(program)
        n = len(value_tuples)
        ids_get = program.value_ids.get
        # Interned value matrix: one row per event, -1 for values the tree
        # never branches on (dict interning collapses 1/1.0/True exactly as
        # the PST's hash branches do — same dict, same semantics).
        interned = [
            [ids_get(value, -1) for value in values] for values in value_tuples
        ]
        # Per-(position, vid) event bitmasks: bit e set iff event e carries
        # interned value vid at position.  width * num_vids rows, aligned
        # with the index's packed edge_pvid keys.
        num_vids = index.num_vids
        width = index.width
        full_mask = (1 << n) - 1
        vid_mask_rows = [0] * (width * num_vids + 1)
        vid_mask_rows[index.star_row] = full_mask  # ``*`` accepts everyone
        for e, row in enumerate(interned):
            bit = 1 << e
            base = 0
            for p in range(width):
                vid = row[p]
                if vid >= 0:
                    vid_mask_rows[base + vid] |= bit
                base += num_vids
        vid_masks = np.asarray(vid_mask_rows, dtype=np.uint64)
        matched: List[list] = [[] for _ in range(n)]
        nodes = np.zeros(1, dtype=np.int64)
        masks = np.full(1, full_mask, dtype=np.uint64)
        leaf_subs = index.leaf_subs
        positions_column = index.positions
        edge_start = index.edge_start
        edge_starts_hi = index.edge_starts_hi
        edge_pvid = index.edge_pvid
        edge_children = index.edge_children
        any_ranges = index.any_ranges
        level_masks: List[object] = []
        while nodes.size:
            level_masks.append(masks)
            positions = positions_column[nodes]
            leaf_mask = positions < 0
            if leaf_mask.any():
                # Leaf drains run in plain Python (they extend Python result
                # lists either way); .tolist() first — elementwise ndarray
                # indexing is an order of magnitude slower than list reads.
                for node, m in zip(
                    nodes[leaf_mask].tolist(), masks[leaf_mask].tolist()
                ):
                    subs = leaf_subs[node]
                    if subs is not None:
                        if m & (m - 1) == 0:  # single event: skip the loop
                            matched[m.bit_length() - 1].extend(subs)
                            continue
                        while m:
                            low = m & -m
                            matched[low.bit_length() - 1].extend(subs)
                            m ^= low
                interior = ~leaf_mask
                nodes = nodes[interior]
                masks = masks[interior]
                if not nodes.size:
                    break
                positions = positions[interior]
            # Value-table and star transitions in one ragged gather of the
            # frontier nodes' edges, ANDed against the per-chunk vid masks
            # (the sentinel star row passes every event through).
            starts = edge_start[nodes]
            counts = edge_starts_hi[nodes] - starts
            total = int(counts.sum())
            if total:
                bounds = np.cumsum(counts)
                edge_idx = np.arange(total, dtype=np.int64) + np.repeat(
                    starts - (bounds - counts), counts
                )
                child_masks = np.repeat(masks, counts) & vid_masks[
                    edge_pvid[edge_idx]
                ]
                hit = child_masks != 0
                next_nodes = edge_children[edge_idx[hit]]
                next_masks = child_masks[hit]
            else:
                next_nodes = next_masks = None
            # Range transitions: scalar filters (they must reproduce
            # AttributeTest.evaluate semantics, TypeError-to-False included).
            if any_ranges and index.has_ranges[nodes].any():
                range_mask = index.has_ranges[nodes]
                range_children: List[int] = []
                range_masks: List[int] = []
                for node, m, position in zip(
                    nodes[range_mask].tolist(),
                    masks[range_mask].tolist(),
                    positions[range_mask].tolist(),
                ):
                    tests = index.range_lists[node]
                    child_bits = [0] * len(tests)
                    while m:
                        low = m & -m
                        m ^= low
                        value = value_tuples[low.bit_length() - 1][position]
                        for slot, (test, _child) in enumerate(tests):
                            if test.evaluate(value):
                                child_bits[slot] |= low
                    for (_test, child), bits in zip(tests, child_bits):
                        if bits:
                            range_children.append(child)
                            range_masks.append(bits)
                if range_children:
                    range_node_column = np.asarray(range_children, dtype=np.int64)
                    range_mask_column = np.asarray(range_masks, dtype=np.uint64)
                    if next_nodes is None:
                        next_nodes = range_node_column
                        next_masks = range_mask_column
                    else:
                        next_nodes = np.concatenate((next_nodes, range_node_column))
                        next_masks = np.concatenate((next_masks, range_mask_column))
            if next_nodes is None:
                break
            nodes = next_nodes
            masks = next_masks
        # Steps: every set bit across all recorded mask columns is one node
        # visit of one event.  astype("<u8") pins byte order so the uint8
        # view reads LSB-first on any host.
        all_masks = np.concatenate(level_masks).astype("<u8")
        bits = np.unpackbits(all_masks.view(np.uint8), bitorder="little")
        steps = bits.reshape(-1, _CHUNK).sum(axis=0, dtype=np.int64)[:n].tolist()
        return list(zip(matched, steps))

    def _match_batch_columns(
        self, program, value_tuples: Sequence[tuple]
    ) -> List[Tuple[list, int]]:
        """The zero-dependency path: same level-major columns, ``array('q')``
        storage, scalar transitions.  Exactness over speed — without numpy
        the bulk operations have no hardware to win on, but the backend must
        still answer (and answer identically) wherever it is selected."""
        records = program._records
        value_ids = program.value_ids
        ids_get = value_ids.get
        n = len(value_tuples)
        interned = [
            [ids_get(value, -1) for value in values] for values in value_tuples
        ]
        matched: List[list] = [[] for _ in range(n)]
        steps = [0] * n
        nodes = array("q", bytes(8 * n))  # all-zero: every event at the root
        events = array("q", range(n))
        while nodes:
            next_nodes = array("q")
            next_events = array("q")
            push_node = next_nodes.append
            push_event = next_events.append
            for k in range(len(nodes)):
                node = nodes[k]
                e = events[k]
                steps[e] += 1
                position, table, ranges, star_child, subs = records[node]
                if position < 0:
                    if subs is not None:
                        matched[e].extend(subs)
                    continue
                if table is not None:
                    child = table.get(interned[e][position])
                    if child is not None:
                        push_node(child)
                        push_event(e)
                if ranges is not None:
                    value = value_tuples[e][position]
                    for test, range_child in ranges:
                        if test.evaluate(value):
                            push_node(range_child)
                            push_event(e)
                if star_child >= 0:
                    push_node(star_child)
                    push_event(e)
            nodes = next_nodes
            events = next_events
        return [(matched[i], steps[i]) for i in range(n)]
