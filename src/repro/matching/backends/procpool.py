"""Shared-memory process workers for the sharded engine.

``procpool`` is not an in-process kernel: it is an *execution mode* of
:class:`~repro.matching.sharding.ShardedEngine` in which batched matching
runs in worker **processes** instead of the parent, sidestepping the GIL
that makes thread fan-out a no-op for the pure-Python kernels.

The expensive part of process workers is shipping the compiled program, so
this module never pickles a program per call.  Instead the parent
*publishes* each shard's program once into a
:mod:`multiprocessing.shared_memory` segment and thereafter sends only tiny
work orders over a pipe:

* **Publication** — :meth:`ProcPoolExecutor.publish` serializes a
  :class:`ProgramImage` payload (the fused records with leaf subscriptions
  replaced by their integer ids, the value-interning table, and the packed
  annotation arrays) into a fresh shared-memory segment.  Publications are
  keyed by ``(program_uid, generation)``: churn that patches or re-annotates
  a shard bumps its program's generation, and the next dispatch republishes
  that shard under a new segment name while unlinking the old one.  An
  unchanged shard is never re-serialized.
* **Dispatch** — one pipe round-trip per worker per batch.  A work order is
  ``(shard_index, shm_name, size, op, payload)`` where ``payload`` carries
  plain event value tuples; the reply is ``("ok", results)`` or
  ``("err", traceback_text)``.  Workers cache the deserialized image per
  shard and re-read shared memory only when the segment name changes (a
  fresh name *is* a new ``(program_uid, generation)``, so the name doubles
  as the cache key).
* **Execution** — workers run the ordinary :class:`KernelBackend` kernels
  (the ``vector`` backend by default, which itself falls back to pure
  Python when numpy is absent) over the reconstructed image.  The kernels
  only need the record surface (``_records``/``value_ids``/``ann_yes``/
  ``ann_maybe``/``generation``/``backend_state``), which is exactly what
  :class:`ProgramImage` provides — results are therefore bit-identical to
  the parent's ``interp`` kernel: same match *sets* (as subscription ids,
  mapped back to live :class:`~repro.matching.predicates.Subscription`
  objects by the parent), same step counts, same refined link masks.

Worker failures never hang the parent: a worker that raises sends the
formatted traceback back and keeps serving; a worker that *dies* surfaces
as a :class:`ProcPoolError` naming the worker on the very next dispatch.

Observability (all labeled ``backend="procpool"``):

* ``engine.backend.republishes`` — shared-memory publications (first
  publication and every generation change);
* ``engine.backend.dispatches`` — worker pipe round-trips;
* ``engine.backend.shm_bytes`` — total bytes currently published.
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs import get_registry

#: Kernel the workers execute with.  ``vector`` degrades gracefully: with
#: numpy it runs the columnar kernel, without it the zero-dependency column
#: fallback — either way bit-identical to ``interp``.
DEFAULT_WORKER_KERNEL = "vector"

#: Seconds to wait for a worker to exit cooperatively before terminating it.
_SHUTDOWN_GRACE_S = 5.0


class ProcPoolError(ReproError):
    """A procpool worker died or reported an execution failure."""


class ProgramImage:
    """The kernel-facing view of a published program, worker-side.

    Exposes exactly the record surface the kernels read.  Leaf records hold
    subscription *ids* (ints) instead of live ``Subscription`` objects; the
    kernels are indifferent (they only ever ``extend`` matched lists with
    whatever a leaf holds), and the parent maps ids back to the shard's live
    objects after the round-trip.
    """

    __slots__ = (
        "_records",
        "value_ids",
        "ann_yes",
        "ann_maybe",
        "generation",
        "backend_state",
    )

    def __init__(
        self,
        records: List[tuple],
        value_ids: Dict[object, int],
        ann_yes: List[int],
        ann_maybe: List[int],
    ) -> None:
        self._records = records
        self.value_ids = value_ids
        self.ann_yes = ann_yes
        self.ann_maybe = ann_maybe
        # A worker sees each publication as a fresh image with fresh scratch,
        # so the generation can start at zero: backend state (the vector
        # backend's columnar index) is keyed per image, never across images.
        self.generation = 0
        self.backend_state: Dict[str, object] = {}


def _image_payload(program) -> bytes:
    """Pickle ``program``'s record surface with leaf subs as id tuples."""
    records = [
        record
        if record[4] is None
        else (
            record[0],
            record[1],
            record[2],
            record[3],
            tuple(sub.subscription_id for sub in record[4]),
        )
        for record in program._records
    ]
    return pickle.dumps(
        (records, program.value_ids, list(program.ann_yes), list(program.ann_maybe)),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def _worker_main(conn, kernel_name: str) -> None:
    """Worker loop: receive work orders, run kernels over cached images.

    Runs until the parent sends ``None`` or the pipe closes.  Exceptions
    while *executing* are reported back as ``("err", traceback)`` so the
    parent can re-raise with context; the worker itself keeps serving.
    """
    from repro.matching.backends import create_backend

    kernel = create_backend(kernel_name)
    # shard_index -> (shm_name, image, shm handle); replaced when the parent
    # publishes that shard under a new segment name.
    images: Dict[int, Tuple[str, ProgramImage, shared_memory.SharedMemory]] = {}
    try:
        while True:
            try:
                request = conn.recv()
            except (EOFError, OSError):
                break
            if request is None:
                break
            try:
                replies = []
                for shard_index, shm_name, size, op, payload in request:
                    cached = images.get(shard_index)
                    if cached is None or cached[0] != shm_name:
                        if cached is not None:
                            cached[2].close()
                        shm = shared_memory.SharedMemory(name=shm_name)
                        records, value_ids, ann_yes, ann_maybe = pickle.loads(
                            bytes(shm.buf[:size])
                        )
                        image = ProgramImage(records, value_ids, ann_yes, ann_maybe)
                        images[shard_index] = (shm_name, image, shm)
                    else:
                        image = cached[1]
                    if op == "match_batch":
                        replies.append(kernel.match_batch(image, payload))
                    elif op == "links_batch":
                        value_tuples, yes_bits, maybe_bits = payload
                        replies.append(
                            kernel.match_links_batch(
                                image, value_tuples, yes_bits, maybe_bits
                            )
                        )
                    else:
                        raise ValueError(f"unknown procpool op {op!r}")
                conn.send(("ok", replies))
            except Exception:
                conn.send(("err", traceback.format_exc()))
    except KeyboardInterrupt:
        pass
    finally:
        for _name, _image, shm in images.values():
            shm.close()
        conn.close()


class _Publication:
    """One shard's current shared-memory segment plus the id->object map."""

    __slots__ = ("key", "name", "size", "shm", "sub_by_id")

    def __init__(
        self,
        key: Tuple[int, int],
        shm: shared_memory.SharedMemory,
        size: int,
        sub_by_id: Dict[int, object],
    ) -> None:
        self.key = key
        self.name = shm.name
        self.size = size
        self.shm = shm
        self.sub_by_id = sub_by_id


class ProcPoolExecutor:
    """Lazy pool of kernel worker processes plus the publication registry.

    Owned by a :class:`~repro.matching.sharding.ShardedEngine` running with
    ``backend="procpool"``.  Workers start on the first dispatch (a
    construct-and-close engine never forks); shard ``i`` is served by worker
    ``i % num_workers`` so a shard's image is cached in exactly one worker.
    """

    def __init__(
        self, num_workers: int, *, kernel: str = DEFAULT_WORKER_KERNEL
    ) -> None:
        if num_workers < 1:
            raise ProcPoolError("procpool needs at least one worker")
        self.num_workers = num_workers
        self.kernel = kernel
        self._workers: Optional[List[Tuple[object, object]]] = None
        self._published: Dict[int, _Publication] = {}
        self._closed = False
        registry = get_registry()
        self._obs_republishes = registry.counter(
            "engine.backend.republishes", backend="procpool"
        )
        self._obs_dispatches = registry.counter(
            "engine.backend.dispatches", backend="procpool"
        )
        self._obs_shm_bytes = registry.gauge(
            "engine.backend.shm_bytes", backend="procpool"
        )

    # ------------------------------------------------------------------
    # Publication

    def publish(self, shard_index: int, program) -> _Publication:
        """The shard's current publication, (re)publishing if stale.

        Keyed by ``(program_uid, generation)``: a patched, re-annotated, or
        recompiled program gets a fresh segment; an unchanged one returns
        the existing publication without touching shared memory.
        """
        key = (program.program_uid, program.generation)
        current = self._published.get(shard_index)
        if current is not None and current.key == key:
            return current
        payload = _image_payload(program)
        shm = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
        shm.buf[: len(payload)] = payload
        sub_by_id: Dict[int, object] = {}
        for record in program._records:
            if record[4] is not None:
                for sub in record[4]:
                    sub_by_id[sub.subscription_id] = sub
        publication = _Publication(key, shm, len(payload), sub_by_id)
        if current is not None:
            # Workers attach by the *current* name only, so the old segment
            # can be unlinked immediately (attached workers keep it mapped
            # until they swap to the new name).
            current.shm.close()
            current.shm.unlink()
        self._published[shard_index] = publication
        self._obs_republishes.inc()
        self._obs_shm_bytes.set(
            float(sum(entry.size for entry in self._published.values()))
        )
        return publication

    # ------------------------------------------------------------------
    # Dispatch

    def _ensure_workers(self) -> List[Tuple[object, object]]:
        if self._closed:
            raise ProcPoolError("procpool executor is closed")
        workers = self._workers
        if workers is None:
            # Prefer fork (cheap, no re-import); fall back to the platform
            # default where fork is unavailable (_worker_main is a module
            # level function, so every start method can target it).
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:
                ctx = multiprocessing.get_context()
            workers = []
            for _ in range(self.num_workers):
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, self.kernel),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                workers.append((process, parent_conn))
            self._workers = workers
        return workers

    def run(self, ops: List[tuple]) -> List[list]:
        """Execute work orders, one pipe round-trip per involved worker.

        ``ops`` elements are ``(shard_index, shm_name, size, op, payload)``;
        the result list is parallel to ``ops``.  All requests are written
        before any reply is read, so workers execute concurrently.
        """
        workers = self._ensure_workers()
        by_worker: Dict[int, List[int]] = {}
        for slot, op in enumerate(ops):
            by_worker.setdefault(op[0] % self.num_workers, []).append(slot)
        for worker_index, slots in by_worker.items():
            process, conn = workers[worker_index]
            try:
                conn.send([ops[slot] for slot in slots])
            except (OSError, BrokenPipeError) as error:
                raise ProcPoolError(
                    f"procpool worker {worker_index} (pid {process.pid}) died "
                    f"before accepting work"
                ) from error
        results: List[Optional[list]] = [None] * len(ops)
        for worker_index, slots in by_worker.items():
            process, conn = workers[worker_index]
            try:
                status, replies = conn.recv()
            except (EOFError, OSError) as error:
                raise ProcPoolError(
                    f"procpool worker {worker_index} (pid {process.pid}) died "
                    f"mid-dispatch (exit code {process.exitcode})"
                ) from error
            if status != "ok":
                raise ProcPoolError(
                    f"procpool worker {worker_index} raised while matching:\n{replies}"
                )
            for slot, reply in zip(slots, replies):
                results[slot] = reply
        self._obs_dispatches.inc(len(by_worker))
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Lifecycle

    def close(self) -> None:
        """Stop workers and unlink every published segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._workers is not None:
            for _process, conn in self._workers:
                try:
                    conn.send(None)
                except (OSError, BrokenPipeError):
                    pass
            for process, conn in self._workers:
                process.join(timeout=_SHUTDOWN_GRACE_S)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=_SHUTDOWN_GRACE_S)
                conn.close()
            self._workers = None
        for publication in self._published.values():
            publication.shm.close()
            try:
                publication.shm.unlink()
            except FileNotFoundError:
                pass
        self._published.clear()
        self._obs_shm_bytes.set(0.0)

    def __del__(self) -> None:
        # Best effort: an engine that was never close()d must not leak
        # worker processes or shared-memory segments.
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "idle" if self._workers is None else f"{self.num_workers} workers"
        )
        return f"ProcPoolExecutor({state}, kernel={self.kernel!r})"
