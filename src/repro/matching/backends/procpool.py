"""Shared-memory process workers for the sharded engine.

``procpool`` is not an in-process kernel: it is an *execution mode* of
:class:`~repro.matching.sharding.ShardedEngine` in which batched matching
runs in worker **processes** instead of the parent, sidestepping the GIL
that makes thread fan-out a no-op for the pure-Python kernels.

The expensive part of process workers is shipping the compiled program, so
this module never pickles a program per call.  Instead the parent
*publishes* each shard's program once into a
:mod:`multiprocessing.shared_memory` segment and thereafter sends only tiny
work orders over a pipe:

* **Publication** — :meth:`ProcPoolExecutor.publish` writes the program
  into a fresh shared-memory segment in the *packed image* format (see
  :func:`pack_image`): the structural columns, CSR pools, and annotation
  masks are real typed int64/uint64 buffers that workers view **in place**
  via ``memoryview.cast`` — only the value-interning dict and range-test
  objects ride in a small pickle section.  Publications are
  keyed by ``(program_uid, generation)``: churn that patches or re-annotates
  a shard bumps its program's generation, and the next dispatch republishes
  that shard under a new segment name while unlinking the old one.  An
  unchanged shard is never re-serialized.
* **Dispatch** — one pipe round-trip per worker per batch.  A work order is
  ``(shard_index, shm_name, size, op, payload)`` where ``payload`` carries
  plain event value tuples; the reply is ``("ok", results)`` or
  ``("err", traceback_text)``.  Workers cache the deserialized image per
  shard and re-read shared memory only when the segment name changes (a
  fresh name *is* a new ``(program_uid, generation)``, so the name doubles
  as the cache key).
* **Execution** — workers run the ordinary :class:`KernelBackend` kernels
  (the ``vector`` backend by default, which itself falls back to pure
  Python when numpy is absent) over the reconstructed image.  The kernels
  only need the record surface (``_records``/``value_ids``/``ann_yes``/
  ``ann_maybe``/``generation``/``backend_state``), which is exactly what
  :class:`ProgramImage` provides — results are therefore bit-identical to
  the parent's ``interp`` kernel: same match *sets* (as subscription ids,
  mapped back to live :class:`~repro.matching.predicates.Subscription`
  objects by the parent), same step counts, same refined link masks.

Worker failures never hang the parent: a worker that raises sends the
formatted traceback back and keeps serving; a worker that *dies* surfaces
as a :class:`ProcPoolError` naming the worker on the very next dispatch.

Observability (all labeled ``backend="procpool"``):

* ``engine.backend.republishes`` — shared-memory publications (first
  publication and every generation change);
* ``engine.backend.dispatches`` — worker pipe round-trips;
* ``engine.backend.shm_bytes`` — total bytes currently published.
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
from array import array
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs import get_registry

#: Kernel the workers execute with.  ``vector`` degrades gracefully: with
#: numpy it runs the columnar kernel, without it the zero-dependency column
#: fallback — either way bit-identical to ``interp``.
DEFAULT_WORKER_KERNEL = "vector"

#: Seconds to wait for a worker to exit cooperatively before terminating it.
_SHUTDOWN_GRACE_S = 5.0


class ProcPoolError(ReproError):
    """A procpool worker died or reported an execution failure."""


class ProgramImage:
    """The kernel-facing view of a published program, worker-side.

    Exposes exactly the record surface the kernels read.  Leaf records hold
    subscription *ids* (ints) instead of live ``Subscription`` objects; the
    kernels are indifferent (they only ever ``extend`` matched lists with
    whatever a leaf holds), and the parent maps ids back to the shard's live
    objects after the round-trip.
    """

    __slots__ = (
        "_records",
        "value_ids",
        "ann_yes",
        "ann_maybe",
        "generation",
        "backend_state",
        "_views",
    )

    def __init__(
        self,
        records: List[tuple],
        value_ids: Dict[object, int],
        ann_yes,
        ann_maybe,
        views: Tuple[memoryview, ...] = (),
    ) -> None:
        self._records = records
        self.value_ids = value_ids
        self.ann_yes = ann_yes
        self.ann_maybe = ann_maybe
        # A worker sees each publication as a fresh image with fresh scratch,
        # so the generation can start at zero: backend state (the vector
        # backend's columnar index) is keyed per image, never across images.
        self.generation = 0
        self.backend_state: Dict[str, object] = {}
        # Typed views into the shared-memory segment (the annotation arrays
        # are indexed in place, never copied).  They pin the buffer: release()
        # must run before the segment handle can close.
        self._views = views

    def release(self) -> None:
        """Drop the image's views into shared memory so the segment handle
        can be closed (``SharedMemory.close`` raises ``BufferError`` while
        exported views exist)."""
        for view in self._views:
            view.release()
        self._views = ()


# ---------------------------------------------------------------------------
# Packed program image
#
# The published payload is not one pickle blob: the structural columns of the
# program — per-node event position / star child, the CSR offsets, the
# value-table and leaf-subscription pools, and the packed annotation masks —
# are written as real int64/uint64 buffers that workers view *in place*
# through ``memoryview.cast``.  Only the parts with no fixed-width shape
# (the value-interning dict and the range-test objects, plus annotation
# masks too wide for 64 links) ride in a small pickle section.
#
# Layout (all byte offsets 8-aligned):
#
#   header   int64[8]: magic, version, flags, struct_off, struct_len,
#                      ann_off, pickle_off, pickle_len
#   struct   int64[]:  n, len_vt, len_rg, len_sub;
#                      then per node: position, star, vt_start, vt_end,
#                                     rg_start, rg_end, sub_start, sub_end;
#                      then pools: vt_keys, vt_children, rg_children,
#                                  rg_test_index, sub_ids
#   ann      uint64[2n]: ann_yes then ann_maybe   (iff flags & _ANN_PACKED —
#                        masks for >64 links fall back to the pickle section)
#   pickle   pickle((value_ids, range_tests, ann_fallback_or_None))

_IMAGE_MAGIC = 0x50494D47  # "PIMG"
_IMAGE_VERSION = 1
_ANN_PACKED = 1  # flags bit: annotation masks fit uint64 and are packed
_RECORD_WIDTH = 8  # int64 slots per node in the struct section

_U64_MAX = (1 << 64) - 1


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def pack_image(program) -> bytes:
    """Serialize ``program``'s record surface into the packed image format.

    Leaf subscriptions are written as integer ids; the parent keeps the
    id -> live-object map on its side of the pipe (see ``_Publication``).
    """
    struct_ints = array("q")
    vt_keys = array("q")
    vt_children = array("q")
    rg_children = array("q")
    rg_test_index = array("q")
    sub_ids = array("q")
    range_tests: List[object] = []
    range_test_ids: Dict[int, int] = {}
    per_node = array("q")
    for record in program._records:
        position, value_table, ranges, star, subs = record
        vt_start = vt_end = len(vt_keys)
        if value_table:
            for value_id, child in value_table.items():
                vt_keys.append(value_id)
                vt_children.append(child)
            vt_end = len(vt_keys)
        rg_start = rg_end = len(rg_children)
        if ranges:
            for test, child in ranges:
                test_index = range_test_ids.get(id(test))
                if test_index is None:
                    test_index = len(range_tests)
                    range_tests.append(test)
                    range_test_ids[id(test)] = test_index
                rg_children.append(child)
                rg_test_index.append(test_index)
            rg_end = len(rg_children)
        sub_start = sub_end = len(sub_ids)
        if subs:
            for sub in subs:
                sub_ids.append(sub.subscription_id)
            sub_end = len(sub_ids)
        per_node.extend(
            (position, star, vt_start, vt_end, rg_start, rg_end, sub_start, sub_end)
        )
    n = len(program._records)
    struct_ints.extend((n, len(vt_keys), len(rg_children), len(sub_ids)))
    struct_ints.extend(per_node)
    struct_ints.extend(vt_keys)
    struct_ints.extend(vt_children)
    struct_ints.extend(rg_children)
    struct_ints.extend(rg_test_index)
    struct_ints.extend(sub_ids)

    ann_yes = list(program.ann_yes)
    ann_maybe = list(program.ann_maybe)
    flags = 0
    ann_packed = b""
    ann_fallback: Optional[Tuple[List[int], List[int]]] = None
    if all(0 <= mask <= _U64_MAX for mask in ann_yes) and all(
        0 <= mask <= _U64_MAX for mask in ann_maybe
    ):
        flags |= _ANN_PACKED
        ann_packed = array("Q", ann_yes + ann_maybe).tobytes()
    else:  # more than 64 virtual links: arbitrary-precision masks
        ann_fallback = (ann_yes, ann_maybe)
    pickle_blob = pickle.dumps(
        (program.value_ids, range_tests, ann_fallback),
        protocol=pickle.HIGHEST_PROTOCOL,
    )

    struct_off = 64
    struct_bytes = struct_ints.tobytes()
    ann_off = _align8(struct_off + len(struct_bytes))
    pickle_off = _align8(ann_off + len(ann_packed))
    header = array(
        "q",
        (
            _IMAGE_MAGIC,
            _IMAGE_VERSION,
            flags,
            struct_off,
            len(struct_ints),
            ann_off,
            pickle_off,
            len(pickle_blob),
        ),
    )
    out = bytearray(pickle_off + len(pickle_blob))
    out[: len(header) * 8] = header.tobytes()
    out[struct_off : struct_off + len(struct_bytes)] = struct_bytes
    out[ann_off : ann_off + len(ann_packed)] = ann_packed
    out[pickle_off : pickle_off + len(pickle_blob)] = pickle_blob
    return bytes(out)


def unpack_image(buf, size: int) -> ProgramImage:
    """Reconstruct a :class:`ProgramImage` over a packed payload.

    ``buf`` is the shared-memory buffer (or any buffer object).  The
    annotation masks stay *in place* — ``ann_yes`` / ``ann_maybe`` are
    ``uint64`` views into the segment, indexed directly by the kernels —
    and the structural columns are read through typed views rather than
    unpickled.  Call :meth:`ProgramImage.release` before closing the
    segment handle.
    """
    base = memoryview(buf)
    header = base[:64].cast("q")
    if header[0] != _IMAGE_MAGIC or header[1] != _IMAGE_VERSION:
        raise ProcPoolError(
            f"bad program image (magic={header[0]:#x}, version={header[1]})"
        )
    flags, struct_off, struct_len, ann_off, pickle_off, pickle_len = (
        header[2],
        header[3],
        header[4],
        header[5],
        header[6],
        header[7],
    )
    struct = base[struct_off : struct_off + 8 * struct_len].cast("q")
    n, len_vt, len_rg, len_sub = struct[0], struct[1], struct[2], struct[3]
    cursor = 4 + n * _RECORD_WIDTH
    vt_keys = struct[cursor : cursor + len_vt]
    cursor += len_vt
    vt_children = struct[cursor : cursor + len_vt]
    cursor += len_vt
    rg_children = struct[cursor : cursor + len_rg]
    cursor += len_rg
    rg_test_index = struct[cursor : cursor + len_rg]
    cursor += len_rg
    sub_ids = struct[cursor : cursor + len_sub]

    value_ids, range_tests, ann_fallback = pickle.loads(
        base[pickle_off : pickle_off + pickle_len]
    )

    records: List[tuple] = []
    for index in range(n):
        slot = 4 + index * _RECORD_WIDTH
        position = struct[slot]
        if position < 0:
            sub_start, sub_end = struct[slot + 6], struct[slot + 7]
            subs = tuple(sub_ids[sub_start:sub_end]) if sub_end > sub_start else None
            records.append((-1, None, None, -1, subs))
            continue
        star = struct[slot + 1]
        vt_start, vt_end = struct[slot + 2], struct[slot + 3]
        value_table = (
            {vt_keys[j]: vt_children[j] for j in range(vt_start, vt_end)}
            if vt_end > vt_start
            else None
        )
        rg_start, rg_end = struct[slot + 4], struct[slot + 5]
        ranges = (
            tuple(
                (range_tests[rg_test_index[j]], rg_children[j])
                for j in range(rg_start, rg_end)
            )
            if rg_end > rg_start
            else None
        )
        records.append((position, value_table, ranges, star, None))

    if flags & _ANN_PACKED:
        ann = base[ann_off : ann_off + 16 * n].cast("Q")
        ann_yes = ann[:n]
        ann_maybe = ann[n:]
        views: Tuple[memoryview, ...] = (ann_yes, ann_maybe, ann, struct, header, base)
    else:
        assert ann_fallback is not None
        ann_yes, ann_maybe = ann_fallback
        views = (struct, header, base)
    return ProgramImage(records, value_ids, ann_yes, ann_maybe, views)


def _worker_main(conn, kernel_name: str) -> None:
    """Worker loop: receive work orders, run kernels over cached images.

    Runs until the parent sends ``None`` or the pipe closes.  Exceptions
    while *executing* are reported back as ``("err", traceback)`` so the
    parent can re-raise with context; the worker itself keeps serving.
    """
    from repro.matching.backends import create_backend

    kernel = create_backend(kernel_name)
    # shard_index -> (shm_name, image, shm handle); replaced when the parent
    # publishes that shard under a new segment name.
    images: Dict[int, Tuple[str, ProgramImage, shared_memory.SharedMemory]] = {}
    try:
        while True:
            try:
                request = conn.recv()
            except (EOFError, OSError):
                break
            if request is None:
                break
            try:
                replies = []
                for shard_index, shm_name, size, op, payload in request:
                    cached = images.get(shard_index)
                    if cached is None or cached[0] != shm_name:
                        if cached is not None:
                            cached[1].release()
                            cached[2].close()
                        shm = shared_memory.SharedMemory(name=shm_name)
                        image = unpack_image(shm.buf, size)
                        images[shard_index] = (shm_name, image, shm)
                    else:
                        image = cached[1]
                    if op == "match_batch":
                        replies.append(kernel.match_batch(image, payload))
                    elif op == "links_batch":
                        value_tuples, yes_bits, maybe_bits = payload
                        replies.append(
                            kernel.match_links_batch(
                                image, value_tuples, yes_bits, maybe_bits
                            )
                        )
                    else:
                        raise ValueError(f"unknown procpool op {op!r}")
                conn.send(("ok", replies))
            except Exception:
                conn.send(("err", traceback.format_exc()))
    except KeyboardInterrupt:
        pass
    finally:
        for _name, image, shm in images.values():
            image.release()
            shm.close()
        conn.close()


class _Publication:
    """One shard's current shared-memory segment plus the id->object map."""

    __slots__ = ("key", "name", "size", "shm", "sub_by_id")

    def __init__(
        self,
        key: Tuple[int, int],
        shm: shared_memory.SharedMemory,
        size: int,
        sub_by_id: Dict[int, object],
    ) -> None:
        self.key = key
        self.name = shm.name
        self.size = size
        self.shm = shm
        self.sub_by_id = sub_by_id


class ProcPoolExecutor:
    """Lazy pool of kernel worker processes plus the publication registry.

    Owned by a :class:`~repro.matching.sharding.ShardedEngine` running with
    ``backend="procpool"``.  Workers start on the first dispatch (a
    construct-and-close engine never forks); shard ``i`` is served by worker
    ``i % num_workers`` so a shard's image is cached in exactly one worker.
    """

    def __init__(
        self, num_workers: int, *, kernel: str = DEFAULT_WORKER_KERNEL
    ) -> None:
        if num_workers < 1:
            raise ProcPoolError("procpool needs at least one worker")
        self.num_workers = num_workers
        self.kernel = kernel
        self._workers: Optional[List[Tuple[object, object]]] = None
        self._published: Dict[int, _Publication] = {}
        self._closed = False
        registry = get_registry()
        self._obs_republishes = registry.counter(
            "engine.backend.republishes", backend="procpool"
        )
        self._obs_dispatches = registry.counter(
            "engine.backend.dispatches", backend="procpool"
        )
        self._obs_shm_bytes = registry.gauge(
            "engine.backend.shm_bytes", backend="procpool"
        )

    # ------------------------------------------------------------------
    # Publication

    def publish(self, shard_index: int, program) -> _Publication:
        """The shard's current publication, (re)publishing if stale.

        Keyed by ``(program_uid, generation)``: a patched, re-annotated, or
        recompiled program gets a fresh segment; an unchanged one returns
        the existing publication without touching shared memory.
        """
        key = (program.program_uid, program.generation)
        current = self._published.get(shard_index)
        if current is not None and current.key == key:
            return current
        payload = pack_image(program)
        shm = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
        shm.buf[: len(payload)] = payload
        sub_by_id: Dict[int, object] = {}
        for record in program._records:
            if record[4] is not None:
                for sub in record[4]:
                    sub_by_id[sub.subscription_id] = sub
        publication = _Publication(key, shm, len(payload), sub_by_id)
        if current is not None:
            # Workers attach by the *current* name only, so the old segment
            # can be unlinked immediately (attached workers keep it mapped
            # until they swap to the new name).
            current.shm.close()
            current.shm.unlink()
        self._published[shard_index] = publication
        self._obs_republishes.inc()
        self._obs_shm_bytes.set(
            float(sum(entry.size for entry in self._published.values()))
        )
        return publication

    # ------------------------------------------------------------------
    # Dispatch

    def _ensure_workers(self) -> List[Tuple[object, object]]:
        if self._closed:
            raise ProcPoolError("procpool executor is closed")
        workers = self._workers
        if workers is None:
            # Prefer fork (cheap, no re-import); fall back to the platform
            # default where fork is unavailable (_worker_main is a module
            # level function, so every start method can target it).
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:
                ctx = multiprocessing.get_context()
            workers = []
            for _ in range(self.num_workers):
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, self.kernel),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                workers.append((process, parent_conn))
            self._workers = workers
        return workers

    def run(self, ops: List[tuple]) -> List[list]:
        """Execute work orders, one pipe round-trip per involved worker.

        ``ops`` elements are ``(shard_index, shm_name, size, op, payload)``;
        the result list is parallel to ``ops``.  All requests are written
        before any reply is read, so workers execute concurrently.
        """
        workers = self._ensure_workers()
        by_worker: Dict[int, List[int]] = {}
        for slot, op in enumerate(ops):
            by_worker.setdefault(op[0] % self.num_workers, []).append(slot)
        for worker_index, slots in by_worker.items():
            process, conn = workers[worker_index]
            try:
                conn.send([ops[slot] for slot in slots])
            except (OSError, BrokenPipeError) as error:
                raise ProcPoolError(
                    f"procpool worker {worker_index} (pid {process.pid}) died "
                    f"before accepting work"
                ) from error
        results: List[Optional[list]] = [None] * len(ops)
        for worker_index, slots in by_worker.items():
            process, conn = workers[worker_index]
            try:
                status, replies = conn.recv()
            except (EOFError, OSError) as error:
                raise ProcPoolError(
                    f"procpool worker {worker_index} (pid {process.pid}) died "
                    f"mid-dispatch (exit code {process.exitcode})"
                ) from error
            if status != "ok":
                raise ProcPoolError(
                    f"procpool worker {worker_index} raised while matching:\n{replies}"
                )
            for slot, reply in zip(slots, replies):
                results[slot] = reply
        self._obs_dispatches.inc(len(by_worker))
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Lifecycle

    def close(self) -> None:
        """Stop workers and unlink every published segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._workers is not None:
            for _process, conn in self._workers:
                try:
                    conn.send(None)
                except (OSError, BrokenPipeError):
                    pass
            for process, conn in self._workers:
                process.join(timeout=_SHUTDOWN_GRACE_S)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=_SHUTDOWN_GRACE_S)
                conn.close()
            self._workers = None
        for publication in self._published.values():
            publication.shm.close()
            try:
                publication.shm.unlink()
            except FileNotFoundError:
                pass
        self._published.clear()
        self._obs_shm_bytes.set(0.0)

    def __del__(self) -> None:
        # Best effort: an engine that was never close()d must not leak
        # worker processes or shared-memory segments.
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "idle" if self._workers is None else f"{self.num_workers} workers"
        )
        return f"ProcPoolExecutor({state}, kernel={self.kernel!r})"
