"""Pluggable execution backends for the compiled matching kernels.

:mod:`repro.matching.compile` lowers a Parallel Search Tree into flat
record arrays; *how those arrays are executed* is this package's axis.  A
:class:`KernelBackend` implements the raw kernels over a compiled program's
records — single-event search, batched frontier search, and the Section 3.3
link refinement — while :class:`~repro.matching.compile.CompiledProgram`
keeps everything execution-independent: schema checks, projection caches,
batch deduplication, patching, and annotation.

Backends (:data:`BACKEND_NAMES`):

``interp``
    The reference backend: the original interpreter loops, moved here
    verbatim from ``compile.py``.  Every other backend is pinned against it
    by the property suite (``tests/property/test_prop_backends.py``).
``vector``
    A columnar backend that advances a whole ``(node, event)`` frontier one
    tree level at a time with bulk array operations — numpy when it is
    importable, a zero-dependency ``array``-column fallback otherwise.
    Identical match sets, step counts, and masks; only match-list order
    (already unspecified between the engines' batch and single paths) and
    the wall clock change.  See :mod:`repro.matching.backends.vector`.
``procpool``
    Not a kernel backend but an *execution mode* of
    :class:`~repro.matching.sharding.ShardedEngine`: shard programs are
    published once into :mod:`multiprocessing.shared_memory` and matched in
    GIL-free worker processes, with generation-tagged republish after
    churn.  See :mod:`repro.matching.backends.procpool`.  Asking
    :func:`create_backend` for it is an error — select it through
    ``create_engine(engine="sharded", backend="procpool")``.

The kernel interface is deliberately narrow: kernels receive the program
plus plain value tuples (events are projected by the caller) and return
plain ``(matched, steps)`` data.  A program is anything exposing the record
surface (:attr:`~repro.matching.compile.CompiledProgram._records`,
``value_ids``, ``ann_yes``, ``ann_maybe``, ``generation``,
``backend_state``) — which is what lets the procpool workers run the same
kernels over a :class:`~repro.matching.backends.procpool.ProgramImage`
reconstructed from shared memory instead of a live ``CompiledProgram``.

``program.generation`` increments on every mutation of the record arrays
(patch or re-annotation) and ``program.backend_state`` is a scratch dict
cleared alongside it: backends key derived structures (the vector backend's
columnar index, the procpool publisher's shared-memory segments) on the
generation and rebuild lazily when it moves.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SubscriptionError

#: Valid backend names, in documentation order.  ``procpool`` is accepted
#: everywhere a backend name is threaded (CLI, configs, ``create_engine``)
#: but resolves to a sharded-engine execution mode, not a kernel backend.
BACKEND_NAMES = ("interp", "vector", "procpool")

#: Backends that execute kernels in-process over a program's records.
KERNEL_BACKEND_NAMES = ("interp", "vector")

#: The backend used when callers do not choose one.
DEFAULT_BACKEND = "interp"


class KernelBackend(abc.ABC):
    """Raw kernel execution over one compiled program's record arrays.

    Contract (pinned by ``tests/property/test_prop_backends.py``): every
    backend returns what ``interp`` returns — the same matched subscription
    *set* per event (order is unspecified, exactly as it already is between
    the engines' batch and single paths), the same per-event step counts,
    and the same refined link masks.  Kernels are pure: they read the
    program's records and never touch its caches or mutate its arrays.

    ``values`` arguments are full event value tuples
    (:meth:`~repro.matching.events.Event.as_tuple`); batch variants receive
    one tuple per event, already deduplicated by the program's projection
    machinery.
    """

    #: Registry name ("interp" / "vector").
    name: str = "abstract"

    @abc.abstractmethod
    def match(self, program, values: tuple) -> Tuple[list, int]:
        """Single-event Section 2 search: ``(matched_subscriptions, steps)``."""

    @abc.abstractmethod
    def match_batch(
        self, program, value_tuples: Sequence[tuple]
    ) -> List[Tuple[list, int]]:
        """Batched search; element ``i`` equals ``match(value_tuples[i])``."""

    @abc.abstractmethod
    def match_links(
        self, program, values: tuple, yes_bits: int, maybe_bits: int
    ) -> Tuple[int, int]:
        """Section 3.3 refinement: ``(final_yes_bits, steps)``."""

    @abc.abstractmethod
    def match_links_batch(
        self, program, value_tuples: Sequence[tuple], yes_bits: int, maybe_bits: int
    ) -> List[Tuple[int, int]]:
        """Batched refinement of one shared initialization mask."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


#: Kernel-backend singletons are stateless (the vector backend keeps its
#: derived index on the *program*), so one instance per name suffices.
_instances: Dict[str, KernelBackend] = {}


def validate_backend(backend: str) -> str:
    """Check ``backend`` is a known name; returns it for chaining."""
    if backend not in BACKEND_NAMES:
        raise SubscriptionError(
            f"unknown kernel backend {backend!r} — expected one of {BACKEND_NAMES}"
        )
    return backend


def kernel_backend_for(backend: Optional[str]) -> str:
    """The in-process kernel equivalent of an engine's ``backend`` choice.

    Auxiliary programs — the aggregation layer's compiled descent subtrees —
    run in the caller's process whatever execution mode the host engine
    uses, so ``procpool`` (a sharded-engine process-worker mode whose
    workers run the vector kernel) maps to ``vector``; the kernel backends
    map to themselves and ``None`` means :data:`DEFAULT_BACKEND`.
    """
    if backend is None:
        return DEFAULT_BACKEND
    validate_backend(backend)
    return "vector" if backend == "procpool" else backend


def create_backend(backend: str) -> KernelBackend:
    """The kernel backend singleton named ``backend``.

    ``procpool`` is rejected here by design: it is a process-worker
    execution mode of the sharded engine, not an in-process kernel —
    select it with ``create_engine(engine="sharded", backend="procpool")``.
    """
    validate_backend(backend)
    if backend == "procpool":
        raise SubscriptionError(
            "backend 'procpool' is a ShardedEngine execution mode — "
            "select it with engine='sharded' (e.g. create_engine('sharded', "
            "..., backend='procpool')), not as an in-process kernel backend"
        )
    instance = _instances.get(backend)
    if instance is None:
        if backend == "interp":
            from repro.matching.backends.interp import InterpBackend

            instance = InterpBackend()
        else:
            from repro.matching.backends.vector import VectorBackend

            instance = VectorBackend()
        _instances[backend] = instance
    return instance
