"""The reference interpreter backend: the original kernel loops.

These are the loops that lived on
:class:`~repro.matching.compile.CompiledProgram` before the backend axis
existed, moved here verbatim (same visit order, same step accounting, same
narrow-tail cutoff).  Every other backend is defined as "produces exactly
what this one produces"; the property suite enforces it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import RoutingError
from repro.matching.backends import KernelBackend

#: Below this subset width the batched frontier kernel stops splitting and
#: runs the single-event inner loop per member: partitioning a narrow subset
#: at a value table costs more than the node visits it would deduplicate.
_MIN_SHARED_MEMBERS = 8


class InterpBackend(KernelBackend):
    """Pure-Python interpreter over the fused per-node records."""

    name = "interp"

    def match(self, program, values: tuple) -> Tuple[list, int]:
        value_ids = program.value_ids
        interned = [value_ids.get(value) for value in values]
        records = program._records
        matched: list = []
        extend = matched.extend
        # The for loop walks the queue while children are appended to it —
        # CPython list iteration sees the growth, giving a pop-free BFS.
        queue = [0]
        push = queue.append
        for node_index in queue:
            position, table, ranges, star_child, subs = records[node_index]
            if position >= 0:
                if table is not None:
                    child = table.get(interned[position])
                    if child is not None:
                        push(child)
                if ranges is not None:
                    value = values[position]
                    for test, range_child in ranges:
                        if test.evaluate(value):
                            push(range_child)
                if star_child >= 0:
                    push(star_child)
            elif subs is not None:
                extend(subs)
        return matched, len(queue)

    def match_batch(
        self, program, value_tuples: Sequence[tuple]
    ) -> List[Tuple[list, int]]:
        """The frontier kernel: one BFS over the arrays for many events.

        Each frontier entry pairs a node with the (indices of) events whose
        single-event search would visit it; a subset splits at value tables
        by the events' interned values and filters at range slices, while
        the ``*``-branch carries the whole subset down.  Because the source
        structure is a tree, every node appears in at most one frontier
        entry, so an event's step count — the number of entries containing
        it — equals its single-event queue length exactly.

        Two refinements keep the shared walk from costing more than it
        saves.  Subsets below :data:`_MIN_SHARED_MEMBERS` finish with the
        single-event inner loop, one member at a time — the grouping
        bookkeeping only pays for itself while a subset is still wide
        enough that splitting it costs less than visiting the node once
        per member.  And step accounting exploits subset sharing:
        ``*``-branches carry the parent's member *list object* down
        unchanged, so entry visits are tallied per list identity and
        distributed to the events once at the end — a whole star chain
        costs one increment per level instead of ``len(members)``.
        """
        value_ids = program.value_ids
        records = program._records
        n = len(value_tuples)
        interned = [
            [value_ids.get(value) for value in values] for values in value_tuples
        ]
        matched: List[list] = [[] for _ in range(n)]
        steps = [0] * n
        # id(list) -> [visit count, members]; member lists are never mutated
        # after creation, so identity is a safe aggregation key.
        visited: Dict[int, List[object]] = {}
        frontier: List[Tuple[int, List[int]]] = [(0, list(range(n)))]
        push = frontier.append
        for node_index, members in frontier:
            if len(members) < _MIN_SHARED_MEMBERS:
                # Narrow tail: per member, identical to the single-event
                # kernel (same visits, steps from the queue length).
                for e in members:
                    e_interned = interned[e]
                    e_values = value_tuples[e]
                    extend = matched[e].extend
                    queue = [node_index]
                    tail_push = queue.append
                    for tail_index in queue:
                        position, table, ranges, star_child, subs = records[tail_index]
                        if position >= 0:
                            if table is not None:
                                child = table.get(e_interned[position])
                                if child is not None:
                                    tail_push(child)
                            if ranges is not None:
                                value = e_values[position]
                                for test, range_child in ranges:
                                    if test.evaluate(value):
                                        tail_push(range_child)
                            if star_child >= 0:
                                tail_push(star_child)
                        elif subs is not None:
                            extend(subs)
                    steps[e] += len(queue)
                continue
            position, table, ranges, star_child, subs = records[node_index]
            tally = visited.get(id(members))
            if tally is None:
                visited[id(members)] = [1, members]
            else:
                tally[0] += 1
            if position >= 0:
                if table is not None:
                    groups: Dict[int, List[int]] = {}
                    groups_get = groups.get
                    table_get = table.get
                    for e in members:
                        child = table_get(interned[e][position])
                        if child is not None:
                            group = groups_get(child)
                            if group is None:
                                groups[child] = [e]
                            else:
                                group.append(e)
                    for child, group in groups.items():
                        push((child, group))
                if ranges is not None:
                    for test, range_child in ranges:
                        evaluate = test.evaluate
                        passing = [
                            e for e in members if evaluate(value_tuples[e][position])
                        ]
                        if passing:
                            push((range_child, passing))
                if star_child >= 0:
                    push((star_child, members))
            elif subs is not None:
                for e in members:
                    matched[e].extend(subs)
        # Distribute the per-list entry tallies (every entry a list appeared
        # in is one step for each of its members).  The frontier still holds
        # references to every member list, so ids cannot have been recycled.
        for count, group in visited.values():
            for e in group:
                steps[e] += count
        return [(matched[i], steps[i]) for i in range(n)]

    def match_links(
        self, program, values: tuple, yes_bits: int, maybe_bits: int
    ) -> Tuple[int, int]:
        """The Section 3.3 refinement over packed masks.

        An explicit frame stack mirrors ``LinkMatcher``'s recursion exactly
        — same visit order, same early exits, same ``steps``.
        """
        value_ids = program.value_ids
        interned = [value_ids.get(value) for value in values]
        records = program._records
        ann_yes = program.ann_yes
        ann_maybe = program.ann_maybe
        steps = 0
        # Each frame: [children, next_child_position, yes_bits, maybe_bits].
        frames: List[list] = []
        current = 0
        cur_yes = yes_bits
        cur_maybe = maybe_bits
        returned_yes = 0
        entering = True
        while True:
            if entering:
                steps += 1
                # Step 2: refine Maybes with the node's annotation.
                cur_yes |= cur_maybe & ann_yes[current]
                cur_maybe &= ann_maybe[current]
                if not cur_maybe:
                    returned_yes = cur_yes
                    entering = False
                    continue
                position, table, ranges, star_child, _subs = records[current]
                if position < 0:
                    # Leaf annotations are Yes/No only, so refinement above
                    # has already removed every Maybe; this is unreachable
                    # unless an annotation is stale.
                    raise RoutingError(
                        "leaf annotation left Maybe trits — stale annotation?"
                    )
                children: List[int] = []
                if table is not None:
                    child = table.get(interned[position])
                    if child is not None:
                        children.append(child)
                if ranges is not None:
                    value = values[position]
                    for test, range_child in ranges:
                        if test.evaluate(value):
                            children.append(range_child)
                if star_child >= 0:
                    children.append(star_child)
                if not children:
                    # No applicable branch: remaining Maybes become No.
                    returned_yes = cur_yes
                    entering = False
                    continue
                frames.append([children, 0, cur_yes, cur_maybe])
                current = children[0]
                continue
            # Returning `returned_yes` from a completed subsearch.
            if not frames:
                return returned_yes, steps
            frame = frames[-1]
            # Step 3: convert to Yes every Maybe whose returned trit is Yes.
            frame_maybe = frame[3]
            frame_yes = frame[2] | (frame_maybe & returned_yes)
            frame_maybe &= ~returned_yes
            if not frame_maybe:
                frames.pop()
                returned_yes = frame_yes
                continue
            next_child = frame[1] + 1
            children = frame[0]
            if next_child == len(children):
                # All children searched: remaining Maybes become No.
                frames.pop()
                returned_yes = frame_yes
                continue
            frame[1] = next_child
            frame[2] = frame_yes
            frame[3] = frame_maybe
            current = children[next_child]
            cur_yes = frame_yes
            cur_maybe = frame_maybe
            entering = True

    def match_links_batch(
        self, program, value_tuples: Sequence[tuple], yes_bits: int, maybe_bits: int
    ) -> List[Tuple[int, int]]:
        """Per tuple, exactly :meth:`match_links` — the refinement search is
        inherently sequential (its early exits depend on the accumulated
        mask), so the batch form is the loop; batch-level deduplication
        already happened in the program's wrapper."""
        return [
            self.match_links(program, values, yes_bits, maybe_bits)
            for values in value_tuples
        ]
