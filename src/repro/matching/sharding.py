"""Sharded parallel matching: S independent compiled programs, one answer.

The link-matching core is embarrassingly partitionable: split the
subscription set into disjoint groups, build one
:class:`~repro.matching.compile.CompiledProgram` per group, and merge the
per-group answers —

* ``match`` / ``match_batch`` by *union* (the groups are disjoint, so the
  union is exact and duplicate-free);
* ``match_links`` / ``match_links_batch`` by the paper's own **Parallel
  Combine** operator (Section 3) over packed trit masks.  Every shard
  refines the *same* initialization mask; a shard's final mask is
  ``init_yes | (init_maybe & links-with-a-matching-subscription)``, and
  Parallel Combine of all-resolved masks is a bitwise OR of their Yes bits,
  so the merged mask equals the monolithic engine's bit for bit.

Because the merge is exact, :class:`ShardedEngine` is *result- and
mask-equivalent* to :class:`~repro.matching.engines.CompiledEngine` for any
partition (the property suite in ``tests/property/test_prop_sharding.py``
pins this down).  Step counts are reported as the **sum over executed
shards** — each shard's count is exactly what a dedicated compiled engine
over that shard's subscriptions would report, but the sum differs from the
monolithic count (every shard walks its own root), so Chart 2/3 numbers are
only comparable within one engine choice.

What sharding buys:

* **cheap churn** — ``insert``/``remove`` patch only the owning shard;
  waste and recompile accounting are per-shard, so a waste-triggered
  recompile re-lowers one shard's subscriptions instead of all of them.
  The engine keeps a *shard-local event cache* in front of each shard's
  kernel, keyed by the event's full value tuple (computed once per event
  and shared by every shard's lookup), so a warm shard answers a repeated
  event with a single dict probe.  Because those keys are independent of
  the compiled program's structure, churn maintains them *surgically*:
  an insert evicts only the entries its new subscription matches, a
  remove only the entries that contained it — instead of the wholesale
  flush the monolithic engine's projection-keyed caches must do on every
  patch.  This is where the measured wins come from (see
  ``benchmarks/shard_scaling.py``): on churn-heavy streams the monolithic
  engine keeps cold caches while the sharded engine's stay hot.
* **early exit** — serial link matching stops visiting shards once every
  Maybe trit of the initialization mask has resolved to Yes (remaining
  shards could only re-confirm; Parallel Combine is monotone in Yes).
* **optional thread pool** — ``workers > 0`` fans shards out on a
  ``concurrent.futures.ThreadPoolExecutor``.  The kernels are pure Python
  and hold the GIL, so threads buy nothing on CPython today (the measured
  crossover in ``benchmarks/results/shard_scaling.txt`` shows serial
  sharding alone is what wins, via smaller per-shard frontiers and
  per-shard caches); the knob exists so free-threaded builds can use the
  same code path.  Processes are out of scope for the same reason the
  threads are cheap to try: the kernels release no GIL, and pickling 25k
  subscriptions per dispatch would dominate.

Partition policies (``SHARD_POLICIES``):

* ``round-robin`` — subscription arrival order modulo S; the baseline.
* ``hash`` — hash of the subscription's *first indexed attribute* test
  (the first non-don't-care test in tree attribute order).  Subscriptions
  that branch the same way at the root co-locate, so the other shards'
  trees never even grow that branch and their frontiers stay narrow.
* ``balanced`` — the shard with the smallest estimated node count (the
  estimate is maintained incrementally and snapped to exact counts by
  every :meth:`ShardedEngine.rebalance` pass).

A :meth:`ShardedEngine.rebalance` pass measures exact per-shard node
counts, exports the skew gauge, and — when ``max/mean`` skew exceeds the
threshold — migrates subscriptions from the heaviest shards to the
lightest until subscription counts level out (each migration is a plain
remove + insert, so per-shard patching absorbs it).
"""

from __future__ import annotations

import zlib
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import RoutingError, SubscriptionError
from repro.core.annotation import LinkOfSubscriber
from repro.core.link_matcher import LinkMatchResult
from repro.core.trits import TritVector, pack_tritvector, unpack_tritvector
from repro.matching.backends import DEFAULT_BACKEND, validate_backend
from repro.matching.base import MatcherEngine, union_merge
from repro.matching.compile import DEFAULT_MATCH_CACHE_CAPACITY, ProjectionCache
from repro.matching.engines import BATCH_SIZE_BUCKETS, CompiledEngine
from repro.matching.events import Event
from repro.matching.pst import MatchResult
from repro.matching.predicates import Subscription, value_tuple_test
from repro.matching.schema import AttributeValue, EventSchema
from repro.obs import get_registry

if TYPE_CHECKING:  # imported lazily at runtime (only procpool mode needs it)
    from repro.matching.backends.procpool import ProcPoolExecutor

#: Valid partition policies, in documentation order.
SHARD_POLICIES = ("round-robin", "hash", "balanced")

#: Defaults used when a caller selects ``engine="sharded"`` without tuning.
DEFAULT_SHARDS = 4
DEFAULT_SHARD_POLICY = "hash"

#: ``rebalance()`` migrates when ``max_nodes / mean_nodes`` exceeds this.
DEFAULT_REBALANCE_THRESHOLD = 1.5

#: Shard-local caches holding more entries than this are flushed instead of
#: repaired on churn: a repair scans every resident entry, so past this
#: point re-walking the handful of genuinely stale events is cheaper.
REPAIR_SCAN_LIMIT = 2048

#: Bucket boundaries of the ``engine.shard.merge_time`` histogram (seconds).
MERGE_TIME_BUCKETS_S = (1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 1e-3, 1e-2)


def _stable_shard_hash(text: str) -> int:
    """Deterministic across processes (``hash()`` of a str is salted)."""
    return zlib.crc32(text.encode("utf-8"))


class _Shard(CompiledEngine):
    """One shard: a compiled engine plus per-shard labeled instruments.

    The inherited (unlabeled) ``engine.compiled.*`` counters keep counting
    as the aggregate across shards; the labeled ``engine.shard.*`` family
    splits recompiles and node counts per shard for skew diagnosis.
    """

    def __init__(
        self,
        index: int,
        schema: EventSchema,
        *,
        attribute_order: Optional[Sequence[str]] = None,
        domains: Optional[Mapping[str, Sequence[AttributeValue]]] = None,
        match_cache_capacity: int = DEFAULT_MATCH_CACHE_CAPACITY,
        backend: Optional[str] = None,
    ) -> None:
        super().__init__(
            schema,
            attribute_order=attribute_order,
            domains=domains,
            match_cache_capacity=match_cache_capacity,
            backend=backend,
        )
        self.index = index
        registry = get_registry()
        self._obs_shard_recompiles = registry.counter(
            "engine.shard.recompiles", shard=str(index)
        )
        self._obs_shard_nodes = registry.gauge("engine.shard.nodes", shard=str(index))

    def _ensure_program(self):
        compiled = self._program is None
        program = super()._ensure_program()
        if compiled:
            self._obs_shard_recompiles.inc()
            self._obs_shard_nodes.set(program.node_count)
        return program


class ShardedEngine(MatcherEngine):
    """S disjoint compiled shards behind the single-engine interface.

    Parameters beyond the usual engine ones:

    ``num_shards``
        How many shards to partition over (>= 1; 1 degenerates to a
        monolithic compiled engine plus merge overhead).
    ``policy``
        One of :data:`SHARD_POLICIES`; see the module docstring.
    ``workers``
        Fan-out width.  With the default (thread) execution, ``0`` runs
        shards serially — which is what wins under the GIL — and ``> 0``
        uses that many pool threads.  With ``backend="procpool"`` it is the
        number of worker *processes* (``0`` means one per shard).
    ``backend``
        How shard kernels execute (one of
        :data:`~repro.matching.backends.BACKEND_NAMES`).  ``interp`` /
        ``vector`` select the in-process kernel each shard compiles with.
        ``procpool`` switches batched matching to shared-memory worker
        processes (see :mod:`repro.matching.backends.procpool`): shard
        programs are published once per ``(program_uid, generation)`` and
        the batch paths ship only value tuples; single-event calls and
        cache hits stay parent-side on the default kernel.  Results are
        identical across all three, pinned by
        ``tests/property/test_prop_backends.py``.
    ``rebalance_threshold`` / ``rebalance_interval``
        :meth:`rebalance` migrates when node-count skew (``max/mean``)
        exceeds the threshold.  With ``rebalance_interval > 0`` a pass runs
        automatically every that-many mutations; ``0`` leaves rebalancing
        to explicit calls.
    ``early_exit``
        Stop visiting shards during serial link matching once every Maybe
        trit of the initialization mask has resolved to Yes.  Exact either
        way; disabling it makes reported step counts independent of shard
        order (the property suite does).
    """

    name = "sharded"

    def __init__(
        self,
        schema: EventSchema,
        *,
        attribute_order: Optional[Sequence[str]] = None,
        domains: Optional[Mapping[str, Sequence[AttributeValue]]] = None,
        num_shards: int = DEFAULT_SHARDS,
        policy: str = DEFAULT_SHARD_POLICY,
        workers: int = 0,
        match_cache_capacity: int = DEFAULT_MATCH_CACHE_CAPACITY,
        rebalance_threshold: float = DEFAULT_REBALANCE_THRESHOLD,
        rebalance_interval: int = 0,
        early_exit: bool = True,
        backend: Optional[str] = None,
    ) -> None:
        if num_shards < 1:
            raise SubscriptionError("num_shards must be >= 1")
        if policy not in SHARD_POLICIES:
            raise SubscriptionError(
                f"unknown shard policy {policy!r} — expected one of {SHARD_POLICIES}"
            )
        if workers < 0:
            raise SubscriptionError("workers must be >= 0")
        if backend is None:
            backend = DEFAULT_BACKEND
        validate_backend(backend)
        self.schema = schema
        self.policy = policy
        self.workers = workers
        self.backend_name = backend
        self._procpool: Optional["ProcPoolExecutor"] = None
        shard_backend = backend
        if backend == "procpool":
            # Batched matching runs in worker processes over published
            # program images; the parent-side shard programs (singles,
            # cache-served events, publication source) use the default
            # in-process kernel.
            from repro.matching.backends.procpool import ProcPoolExecutor

            shard_backend = DEFAULT_BACKEND
            self._procpool = ProcPoolExecutor(workers if workers > 0 else num_shards)
        self._shards: List[_Shard] = [
            _Shard(
                index,
                schema,
                attribute_order=attribute_order,
                domains=domains,
                match_cache_capacity=match_cache_capacity,
                backend=shard_backend,
            )
            for index in range(num_shards)
        ]
        #: subscription_id -> owning shard index; the single source of truth
        #: for removes and migrations, whatever the insert policy said.
        self._owner: Dict[int, int] = {}
        # Hash policy: positions in tree attribute order, so "first indexed
        # attribute" means the first level the subscription branches at.
        tree = self._shards[0].tree
        self._hash_positions: Tuple[int, ...] = tuple(
            schema.position_of(name) for name in tree.attribute_order
        )
        self._next_round_robin = 0
        #: Per-shard node-count estimates for the balanced policy: exact
        #: after every rebalance(), drifting by +-(tests per predicate)
        #: between passes — plenty for picking the lightest shard.
        self._node_estimates: List[int] = [1] * num_shards
        self._executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-shard")
            if workers > 0 and self._procpool is None
            else None
        )
        # Shard-local event caches: full-value-tuple -> that shard's result.
        # The key is sound for any shard (a shard's answer depends only on
        # event values) and is computed once per event, so a warm shard
        # serves a repeated event with a single dict probe.  Churn repairs
        # only the owning shard's entries (_repair_shard).  Capacity 0
        # disables them, matching the inner caches' convention.
        self._event_caches: Optional[List[ProjectionCache]] = None
        self._link_caches: Optional[List[ProjectionCache]] = None
        if match_cache_capacity > 0:
            self._event_caches = [
                ProjectionCache(match_cache_capacity, kind="shard")
                for _ in range(num_shards)
            ]
            self._link_caches = [
                ProjectionCache(match_cache_capacity, kind="shard_links")
                for _ in range(num_shards)
            ]
        self._num_links: Optional[int] = None
        self._link_of_subscriber: Optional[LinkOfSubscriber] = None
        self.early_exit = early_exit
        self.rebalance_threshold = rebalance_threshold
        self.rebalance_interval = rebalance_interval
        self._mutations = 0
        registry = get_registry()
        self._obs_matches = registry.counter("engine.matches", engine=self.name)
        self._obs_match_steps = registry.counter("engine.match_steps", engine=self.name)
        self._obs_link_matches = registry.counter("engine.link_matches", engine=self.name)
        self._obs_link_match_steps = registry.counter(
            "engine.link_match_steps", engine=self.name
        )
        self._obs_batch_size = registry.histogram(
            "engine.match_batch.size", BATCH_SIZE_BUCKETS, engine=self.name
        )
        self._obs_skew = registry.gauge("engine.shard.skew")
        self._obs_rebalances = registry.counter("engine.shard.rebalances")
        self._obs_migrations = registry.counter("engine.shard.migrations")
        self._obs_merge_time = registry.histogram(
            "engine.shard.merge_time", MERGE_TIME_BUCKETS_S
        )
        # perf_counter costs even when the histogram is a no-op, so merge
        # timing is gated on whether the registry was live at construction.
        self._time_merges = registry.enabled

    # ------------------------------------------------------------------
    # Introspection

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> List[CompiledEngine]:
        """The per-shard engines (read-only use: tests, benchmarks, repr)."""
        return list(self._shards)

    def shard_of(self, subscription_id: int) -> int:
        """Owning shard index of a registered subscription."""
        index = self._owner.get(subscription_id)
        if index is None:
            raise SubscriptionError(f"unknown subscription id {subscription_id}")
        return index

    @property
    def subscriptions(self) -> List[Subscription]:
        merged: List[Subscription] = []
        for shard in self._shards:
            merged.extend(shard.subscriptions)
        return merged

    @property
    def subscription_count(self) -> int:
        return len(self._owner)

    def match_brute_force(self, event: Event) -> List[Subscription]:
        """Reference semantics: evaluate every predicate directly."""
        merged: List[Subscription] = []
        for shard in self._shards:
            merged.extend(shard.match_brute_force(event))
        return merged

    # ------------------------------------------------------------------
    # Partitioned churn

    def insert(self, subscription: Subscription) -> None:
        subscription_id = subscription.subscription_id
        if subscription_id in self._owner:
            raise SubscriptionError(
                f"subscription #{subscription_id} is already registered"
            )
        index = self._choose_shard(subscription)
        self._shards[index].insert(subscription)
        self._owner[subscription_id] = index
        self._node_estimates[index] += self._growth_estimate(subscription)
        self._repair_shard(index, subscription)
        self._invalidate_link_projection()
        self._after_mutation()

    def remove(self, subscription_id: int) -> Subscription:
        index = self._owner.pop(subscription_id, None)
        if index is None:
            raise SubscriptionError(f"unknown subscription id {subscription_id}")
        subscription = self._shards[index].remove(subscription_id)
        self._node_estimates[index] = max(
            1, self._node_estimates[index] - self._growth_estimate(subscription)
        )
        self._repair_shard(index, subscription)
        self._invalidate_link_projection()
        self._after_mutation()
        return subscription

    def invalidate(self) -> None:
        """Drop every shard's compiled form (next match re-lowers each)."""
        for index, shard in enumerate(self._shards):
            shard.invalidate()
            self._flush_shard(index)

    def _flush_shard(self, index: int) -> None:
        """Drop one shard's event caches after its subscription set changed."""
        if self._event_caches is not None:
            self._event_caches[index].flush()
            self._link_caches[index].flush()

    # Churn repairs the owning shard's event caches *surgically* rather than
    # flushing them.  The cache keys are full value tuples — independent of
    # the compiled program's structure (unlike the inner projection keys, so
    # this is only possible at the sharding layer) — which makes stale
    # entries exactly identifiable:
    #
    # * insert: only events the new subscription *matches* can change answer;
    #   everything else keeps serving hits.
    # * remove: only events whose cached result *contained* the subscription
    #   (event cache) / that its predicate matched (link cache) can change.
    #
    # Evicted entries are re-walked on the next access, so cached result
    # sets and masks are always exact.  Surviving entries replay the step
    # count recorded when they were filled (a later patch may have changed
    # what a fresh walk of the same event would count); the property suite
    # pins step equivalence with caching disabled.

    def _repair_shard(self, index: int, subscription: Subscription) -> None:
        """Evict exactly the entries ``subscription`` can change the answer
        for: those whose event its predicate matches.  The test is the same
        whether the subscription was inserted (entries it matches would gain
        it) or removed (cached entries are exact, so an entry contained the
        subscription iff its predicate matches the event)."""
        if self._event_caches is None:
            return
        event_cache = self._event_caches[index]
        link_cache = self._link_caches[index]
        if len(event_cache) + len(link_cache) > REPAIR_SCAN_LIMIT:
            self._flush_shard(index)
            return
        matches_values = self._staleness_test(subscription)
        event_cache.evict_if(lambda key, _result: matches_values(key))
        link_cache.evict_if(lambda key, _packed: matches_values(key[0]))

    @staticmethod
    def _staleness_test(subscription: Subscription):
        """A fast ``values_tuple -> bool`` for repair scans — the shared
        equality-first evaluator of
        :func:`~repro.matching.predicates.value_tuple_test` (the aggregating
        engine's descent-cache repair runs the same one)."""
        return value_tuple_test(subscription.predicate)

    def _choose_shard(self, subscription: Subscription) -> int:
        if self.policy == "round-robin":
            index = self._next_round_robin % len(self._shards)
            self._next_round_robin += 1
            return index
        if self.policy == "balanced":
            estimates = self._node_estimates
            return min(range(len(estimates)), key=estimates.__getitem__)
        return self._hash_shard(subscription)

    def _hash_shard(self, subscription: Subscription) -> int:
        tests = subscription.predicate.tests
        for position in self._hash_positions:
            test = tests[position]
            if not test.is_dont_care:
                return _stable_shard_hash(f"{position}:{test!r}") % len(self._shards)
        # All-don't-care predicates sit on the star chain of any shard.
        return 0

    def _growth_estimate(self, subscription: Subscription) -> int:
        """Roughly how many nodes the subscription adds to its shard: one
        per constrained level plus a leaf."""
        tests = subscription.predicate.tests
        return 1 + sum(
            1 for position in self._hash_positions if not tests[position].is_dont_care
        )

    def _after_mutation(self) -> None:
        self._mutations += 1
        if self.rebalance_interval > 0 and self._mutations % self.rebalance_interval == 0:
            self.rebalance()

    # ------------------------------------------------------------------
    # Rebalancing

    def node_counts(self) -> List[int]:
        """Exact per-shard PST node counts (walks every shard's tree); also
        refreshes the balanced policy's estimates and the per-shard gauges."""
        counts = [shard.tree.node_count() for shard in self._shards]
        self._node_estimates = list(counts)
        for shard, count in zip(self._shards, counts):
            shard._obs_shard_nodes.set(count)
        return counts

    def skew(self) -> float:
        """Node-count skew ``max/mean`` (1.0 = perfectly even)."""
        counts = self.node_counts()
        mean = sum(counts) / len(counts)
        skew = max(counts) / mean if mean else 1.0
        self._obs_skew.set(skew)
        return skew

    def rebalance(self, *, force: bool = False) -> int:
        """Migrate subscriptions off overloaded shards; returns how many moved.

        A no-op while :meth:`skew` is at or under ``rebalance_threshold``
        (unless ``force``).  Migration levels *subscription* counts — the
        measurable, O(1)-maintained proxy that node-count skew tracks under
        every policy — by repeatedly moving one subscription from the
        currently heaviest shard to the lightest.  Each move is a plain
        remove + insert, so the two touched shards patch (or recompile)
        exactly as organic churn would.
        """
        if not force and self.skew() <= self.rebalance_threshold:
            return 0
        shards = self._shards
        sizes = [len(shard.tree) for shard in shards]
        moved = 0
        touched: set = set()
        donors: Dict[int, List[Subscription]] = {}
        while True:
            heavy = max(range(len(sizes)), key=sizes.__getitem__)
            light = min(range(len(sizes)), key=sizes.__getitem__)
            if sizes[heavy] - sizes[light] <= 1:
                break
            pool = donors.get(heavy)
            if not pool:
                pool = donors[heavy] = shards[heavy].subscriptions
            subscription = pool.pop()
            shards[heavy].remove(subscription.subscription_id)
            shards[light].insert(subscription)
            self._owner[subscription.subscription_id] = light
            sizes[heavy] -= 1
            sizes[light] += 1
            touched.update((heavy, light))
            moved += 1
        for index in touched:
            self._flush_shard(index)
        if moved:
            self._obs_rebalances.inc()
            self._obs_migrations.inc(moved)
            self.skew()  # refresh counts, estimates, and the gauge
        return moved

    # ------------------------------------------------------------------
    # Matching (union merge)

    def _fan_out(self, task: Callable[[_Shard], object]) -> List[object]:
        """Run ``task`` once per shard (threaded when ``workers > 0``).

        A shard task that raises fails the whole call with the *original*
        exception — never a half-merged result — annotated with which shard
        raised it (worker-thread tracebacks otherwise point only at the
        pool plumbing).  Remaining tasks are cancelled where possible; any
        already running finish in the pool but their results are dropped.
        """
        if self._executor is None:
            return [task(shard) for shard in self._shards]
        futures = [self._executor.submit(task, shard) for shard in self._shards]
        results: List[object] = []
        error: Optional[BaseException] = None
        failed_index = -1
        for shard, future in zip(self._shards, futures):
            if error is not None:
                future.cancel()
                continue
            try:
                results.append(future.result())
            except BaseException as exc:
                error = exc
                failed_index = shard.index
        if error is not None:
            error.add_note(f"raised in the worker task for shard {failed_index}")
            raise error
        return results

    def _shard_match(self, shard: _Shard, event: Event, key) -> MatchResult:
        """One shard's answer via its shard-local event cache."""
        if self._event_caches is None:
            return shard.program.match(event)
        cache = self._event_caches[shard.index]
        result = cache.get(key)
        if result is None:
            result = shard.program.match(event)
            cache.put(key, result)
        return result

    def _shard_match_batch(
        self, shard: _Shard, events: Sequence[Event], keys: Sequence[tuple]
    ) -> List[MatchResult]:
        """One shard's per-event answers, filling cache misses in one batch."""
        if self._event_caches is None:
            return shard.program.match_batch(events)
        cache = self._event_caches[shard.index]
        results: List[Optional[MatchResult]] = [cache.get(key) for key in keys]
        missing = [i for i, result in enumerate(results) if result is None]
        if missing:
            fresh = shard.program.match_batch([events[i] for i in missing])
            for i, result in zip(missing, fresh):
                results[i] = result
                cache.put(keys[i], result)
        return results  # type: ignore[return-value]

    def match(self, event: Event) -> MatchResult:
        key = event.as_tuple()
        results = self._fan_out(lambda shard: self._shard_match(shard, event, key))
        started = perf_counter() if self._time_merges else 0.0
        merged = union_merge(results)
        if self._time_merges:
            self._obs_merge_time.observe(perf_counter() - started)
        self._obs_matches.inc()
        self._obs_match_steps.inc(merged.steps)
        return merged

    def match_batch(self, events: Sequence[Event]) -> List[MatchResult]:
        if not events:
            return []
        self._obs_batch_size.observe(len(events))
        keys = [event.as_tuple() for event in events]
        if self._procpool is not None:
            per_shard = self._procpool_match_batch(events, keys)
        else:
            per_shard = self._fan_out(
                lambda shard: self._shard_match_batch(shard, events, keys)
            )
        started = perf_counter() if self._time_merges else 0.0
        merged = [
            union_merge(results[i] for results in per_shard)
            for i in range(len(events))
        ]
        total_steps = sum(result.steps for result in merged)
        if self._time_merges:
            self._obs_merge_time.observe(perf_counter() - started)
        self._obs_matches.inc(len(events))
        self._obs_match_steps.inc(total_steps)
        return merged

    def _procpool_match_batch(
        self, events: Sequence[Event], keys: Sequence[tuple]
    ) -> List[List[MatchResult]]:
        """Per-shard per-event answers via the process pool.

        Cache probing stays parent-side (shard-local event caches keep
        their surgical-repair semantics); only the misses travel — as
        deduplicated value tuples out, ``(subscription_ids, steps)`` back.
        """
        assert self._procpool is not None
        n = len(events)
        per_shard: List[List[Optional[MatchResult]]] = []
        ops: List[tuple] = []
        slots: List[Tuple[int, List[List[int]], Dict[int, Subscription]]] = []
        for shard in self._shards:
            if self._event_caches is not None:
                cache = self._event_caches[shard.index]
                results: List[Optional[MatchResult]] = [cache.get(key) for key in keys]
            else:
                results = [None] * n
            per_shard.append(results)
            missing = [i for i, result in enumerate(results) if result is None]
            if not missing:
                continue
            publication = self._procpool.publish(shard.index, shard.program)
            unique: Dict[tuple, int] = {}
            payload: List[tuple] = []
            members: List[List[int]] = []
            for i in missing:
                slot = unique.get(keys[i])
                if slot is None:
                    unique[keys[i]] = len(payload)
                    payload.append(keys[i])
                    members.append([i])
                else:
                    members[slot].append(i)
            ops.append(
                (shard.index, publication.name, publication.size, "match_batch", payload)
            )
            slots.append((shard.index, members, publication.sub_by_id))
        if ops:
            answers = self._procpool.run(ops)
            for (shard_index, members, sub_by_id), entries in zip(slots, answers):
                results = per_shard[shard_index]
                cache = (
                    self._event_caches[shard_index]
                    if self._event_caches is not None
                    else None
                )
                for group, (sub_ids, steps) in zip(members, entries):
                    result = MatchResult(
                        [sub_by_id[sub_id] for sub_id in sub_ids], steps
                    )
                    for i in group:
                        results[i] = result
                        if cache is not None:
                            cache.put(keys[i], result)
        return per_shard  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Link matching (Parallel-Combine merge)

    def bind_links(self, num_links: int, link_of_subscriber: LinkOfSubscriber) -> None:
        self._num_links = num_links
        self._link_of_subscriber = link_of_subscriber
        self._invalidate_link_projection()
        for shard in self._shards:
            shard.bind_links(num_links, link_of_subscriber)
            # A new annotation invalidates every cached link answer.
            if self._link_caches is not None:
                self._link_caches[shard.index].flush()

    def refresh_links(self, subscription: Subscription) -> None:
        """Refresh the owning shard's annotation after ``subscription``'s
        link mapping changed without a structural change (the aggregation
        layer's membership-only updates).  Only the owning shard's program
        re-annotates its path, and only that shard's cached link answers
        for events the predicate matches are evicted — the same surgical
        repair churn gets."""
        index = self._owner.get(subscription.subscription_id)
        if index is None:
            return
        self._shards[index].refresh_links(subscription)
        if self._link_caches is not None:
            cache = self._link_caches[index]
            if len(cache) > REPAIR_SCAN_LIMIT:
                cache.flush()
            else:
                matches_values = self._staleness_test(subscription)
                cache.evict_if(lambda key, _packed: matches_values(key[0]))

    def _require_links(self) -> int:
        if self._num_links is None:
            raise RoutingError(
                f"{type(self).__name__}.match_links() requires a prior bind_links()"
            )
        return self._num_links

    def _check_mask(self, initialization_mask: TritVector) -> None:
        if len(initialization_mask) != self._num_links:
            raise ValueError(
                f"trit vector length mismatch: {self._num_links} vs "
                f"{len(initialization_mask)}"
            )

    def _shard_match_links(
        self, shard: _Shard, event: Event, key: tuple, yes_bits: int, maybe_bits: int
    ) -> "Tuple[int, int]":
        """One shard's packed link answer via its shard-local link cache."""
        if self._link_caches is None:
            return shard._match_links_packed(event, yes_bits, maybe_bits)
        cache = self._link_caches[shard.index]
        cache_key = (key, yes_bits, maybe_bits)
        packed = cache.get(cache_key)
        if packed is None:
            packed = shard._match_links_packed(event, yes_bits, maybe_bits)
            cache.put(cache_key, packed)
        return packed

    def match_links(
        self, event: Event, initialization_mask: TritVector
    ) -> LinkMatchResult:
        num_links = self._require_links()
        self._check_mask(initialization_mask)
        yes_bits, maybe_bits = pack_tritvector(initialization_mask)
        key = event.as_tuple()
        merged_yes = yes_bits
        steps = 0
        if self._executor is not None:
            packed = self._fan_out(
                lambda shard: self._shard_match_links(
                    shard, event, key, yes_bits, maybe_bits
                )
            )
            for final_yes, shard_steps in packed:
                merged_yes |= final_yes
                steps += shard_steps
        else:
            for shard in self._shards:
                if self.early_exit and merged_yes & maybe_bits == maybe_bits:
                    # Every Maybe has resolved to Yes; Parallel Combine is
                    # monotone in Yes, so later shards cannot change the mask.
                    break
                final_yes, shard_steps = self._shard_match_links(
                    shard, event, key, yes_bits, maybe_bits
                )
                merged_yes |= final_yes
                steps += shard_steps
        self._obs_link_matches.inc()
        self._obs_link_match_steps.inc(steps)
        return LinkMatchResult(unpack_tritvector(merged_yes, 0, num_links), steps)

    def match_links_batch(
        self, events: Sequence[Event], initialization_mask: TritVector
    ) -> List[LinkMatchResult]:
        if not events:
            return []
        num_links = self._require_links()
        self._check_mask(initialization_mask)
        yes_bits, maybe_bits = pack_tritvector(initialization_mask)
        keys = [event.as_tuple() for event in events]
        merged = [yes_bits] * len(events)
        steps = [0] * len(events)

        def shard_batch(shard: _Shard, indexes: Sequence[int]) -> List["Tuple[int, int]"]:
            # Per-event cache probes, then one batched kernel call for misses.
            if self._link_caches is None:
                return shard._match_links_batch_packed(
                    [events[i] for i in indexes], yes_bits, maybe_bits
                )
            cache = self._link_caches[shard.index]
            packed: List[Optional[Tuple[int, int]]] = [
                cache.get((keys[i], yes_bits, maybe_bits)) for i in indexes
            ]
            missing = [j for j, entry in enumerate(packed) if entry is None]
            if missing:
                fresh = shard._match_links_batch_packed(
                    [events[indexes[j]] for j in missing], yes_bits, maybe_bits
                )
                for j, entry in zip(missing, fresh):
                    packed[j] = entry
                    cache.put((keys[indexes[j]], yes_bits, maybe_bits), entry)
            return packed  # type: ignore[return-value]

        if self._procpool is not None or self._executor is not None:
            # Parallel semantics: every shard refines every event (no early
            # exit), exactly like match_links() with a thread pool.
            if self._procpool is not None:
                per_shard = self._procpool_links_batch(keys, yes_bits, maybe_bits)
            else:
                everything = list(range(len(events)))
                per_shard = self._fan_out(
                    lambda shard: shard_batch(shard, everything)
                )
            for packed in per_shard:
                for i, (final_yes, shard_steps) in enumerate(packed):
                    merged[i] |= final_yes
                    steps[i] += shard_steps
        else:
            # Serial path mirrors match_links() per event: an event drops out
            # of the pending set as soon as its Maybes all resolve to Yes, so
            # later shards never see it (same masks, same step totals).
            pending = list(range(len(events)))
            for shard in self._shards:
                if self.early_exit:
                    pending = [i for i in pending if merged[i] & maybe_bits != maybe_bits]
                if not pending:
                    break
                packed = shard_batch(shard, pending)
                for i, (final_yes, shard_steps) in zip(pending, packed):
                    merged[i] |= final_yes
                    steps[i] += shard_steps
        self._obs_link_matches.inc(len(events))
        self._obs_link_match_steps.inc(sum(steps))
        return [
            LinkMatchResult(unpack_tritvector(final_yes, 0, num_links), event_steps)
            for final_yes, event_steps in zip(merged, steps)
        ]

    def _procpool_links_batch(
        self, keys: Sequence[tuple], yes_bits: int, maybe_bits: int
    ) -> List[List["Tuple[int, int]"]]:
        """Per-shard packed link answers via the process pool.

        Mirrors :meth:`_procpool_match_batch`: parent-side cache probes,
        deduplicated value tuples out, ``(final_yes, steps)`` back.  The
        shard program is annotated (parent-side) before publication, so the
        published image carries current ``ann_yes``/``ann_maybe`` arrays —
        re-annotation bumps the generation and republishes.
        """
        assert self._procpool is not None and self._num_links is not None
        n = len(keys)
        per_shard: List[List[Optional[Tuple[int, int]]]] = []
        ops: List[tuple] = []
        slots: List[Tuple[int, List[List[int]]]] = []
        for shard in self._shards:
            if self._link_caches is not None:
                cache = self._link_caches[shard.index]
                packed: List[Optional[Tuple[int, int]]] = [
                    cache.get((key, yes_bits, maybe_bits)) for key in keys
                ]
            else:
                packed = [None] * n
            per_shard.append(packed)
            missing = [i for i, entry in enumerate(packed) if entry is None]
            if not missing:
                continue
            program = shard._annotated_program(self._num_links)
            publication = self._procpool.publish(shard.index, program)
            unique: Dict[tuple, int] = {}
            payload: List[tuple] = []
            members: List[List[int]] = []
            for i in missing:
                slot = unique.get(keys[i])
                if slot is None:
                    unique[keys[i]] = len(payload)
                    payload.append(keys[i])
                    members.append([i])
                else:
                    members[slot].append(i)
            ops.append(
                (
                    shard.index,
                    publication.name,
                    publication.size,
                    "links_batch",
                    (payload, yes_bits, maybe_bits),
                )
            )
            slots.append((shard.index, members))
        if ops:
            answers = self._procpool.run(ops)
            for (shard_index, members), entries in zip(slots, answers):
                packed = per_shard[shard_index]
                cache = (
                    self._link_caches[shard_index]
                    if self._link_caches is not None
                    else None
                )
                for group, entry in zip(members, entries):
                    for i in group:
                        packed[i] = entry
                        if cache is not None:
                            cache.put((keys[i], yes_bits, maybe_bits), entry)
        return per_shard  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Lifecycle

    def close(self) -> None:
        """Shut down worker pools and shared memory (no-op when serial)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._procpool is not None:
            # Like the thread pool: a closed engine keeps answering, it just
            # falls back to serial parent-side execution.
            self._procpool.close()
            self._procpool = None

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        sizes = ",".join(str(len(shard.tree)) for shard in self._shards)
        return (
            f"ShardedEngine({len(self._shards)} shards [{sizes}], "
            f"policy={self.policy!r}, workers={self.workers}, "
            f"backend={self.backend_name!r})"
        )
