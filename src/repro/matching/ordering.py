"""Attribute-ordering heuristics for the Parallel Search Tree.

Section 2 of the paper: "The way in which attributes are ordered from root to
leaf in the PST can be arbitrary.  In our experience, however, performance
seems to be better if the attributes near the root are chosen to have the
fewest number of subscriptions labeled with a ``*``."

This module provides that heuristic (:func:`order_by_fewest_dont_cares`) plus
two baselines used by the ablation benchmarks (declaration order and its
reverse — the worst case puts the least selective attributes at the root).
All functions return a permutation of the schema's attribute names, ready to
pass as ``attribute_order`` to :class:`~repro.matching.pst.ParallelSearchTree`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.matching.predicates import Predicate
from repro.matching.schema import EventSchema


def dont_care_counts(schema: EventSchema, predicates: Iterable[Predicate]) -> Dict[str, int]:
    """How many of ``predicates`` leave each attribute unconstrained."""
    counts = {name: 0 for name in schema.names}
    for predicate in predicates:
        if predicate.schema != schema:
            continue
        for attribute, test in zip(schema, predicate.tests):
            if test.is_dont_care:
                counts[attribute.name] += 1
    return counts


def order_by_fewest_dont_cares(
    schema: EventSchema, predicates: Iterable[Predicate]
) -> List[str]:
    """The paper's heuristic: most-constrained attributes first.

    Ties break by schema declaration order, so the result is deterministic.
    """
    counts = dont_care_counts(schema, predicates)
    declaration_rank = {name: i for i, name in enumerate(schema.names)}
    return sorted(schema.names, key=lambda name: (counts[name], declaration_rank[name]))


def declaration_order(schema: EventSchema) -> List[str]:
    """Baseline: the order attributes were declared in."""
    return list(schema.names)


def reverse_declaration_order(schema: EventSchema) -> List[str]:
    """Adversarial baseline for ablations: declaration order reversed."""
    return list(reversed(schema.names))


def order_quality(
    schema: EventSchema, predicates: Sequence[Predicate], order: Sequence[str]
) -> float:
    """A cheap proxy for how good an ordering is: the average tree depth at
    which a predicate's first constrained attribute appears (lower is better,
    because searches fan out at ``*``-levels before the first real test).

    Used by tests and the ordering ablation to check the heuristic actually
    improves on the baselines for the paper's workloads.
    """
    if not predicates:
        return 0.0
    rank = {name: i for i, name in enumerate(order)}
    total = 0
    for predicate in predicates:
        constrained = [
            rank[attribute.name]
            for attribute, test in zip(schema, predicate.tests)
            if not test.is_dont_care
        ]
        total += min(constrained) if constrained else len(order)
    return total / len(predicates)
