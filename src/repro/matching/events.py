"""Events — the unit of information published into an information space.

An :class:`Event` is an immutable, schema-validated tuple of attribute values
plus optional delivery metadata (a publisher id and a sequence number, used by
the prototype broker's reliable-delivery log and by the simulator to track
individual events end to end).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.errors import EventError, SchemaError
from repro.matching.schema import AttributeValue, EventSchema

_event_ids = itertools.count(1)


class Event:
    """An immutable, validated event.

    Values can be given as a mapping or positionally in schema order::

        schema = stock_trade_schema()
        Event(schema, {"issue": "IBM", "price": 119.5, "volume": 2000})
        Event.from_tuple(schema, ("IBM", 119.5, 2000))

    ``event_id`` is a process-local unique id assigned at construction; it is
    *not* part of equality (two events with the same values compare equal) but
    lets the simulator and broker logs track a specific published instance.
    """

    __slots__ = ("schema", "_values", "_tuple", "event_id", "publisher", "sequence")

    def __init__(
        self,
        schema: EventSchema,
        values: Mapping[str, AttributeValue],
        *,
        publisher: Optional[str] = None,
        sequence: Optional[int] = None,
    ) -> None:
        try:
            coerced = schema.validate_values(values)
        except SchemaError as exc:
            raise EventError(str(exc)) from exc
        self.schema = schema
        self._values: Dict[str, AttributeValue] = coerced
        self._tuple: Optional[Tuple[AttributeValue, ...]] = None
        self.event_id = next(_event_ids)
        self.publisher = publisher
        self.sequence = sequence

    @classmethod
    def from_tuple(
        cls,
        schema: EventSchema,
        values: Tuple[AttributeValue, ...],
        *,
        publisher: Optional[str] = None,
        sequence: Optional[int] = None,
    ) -> "Event":
        """Build an event from values given in schema order."""
        if len(values) != len(schema):
            raise EventError(
                f"expected {len(schema)} values for schema {schema!r}, got {len(values)}"
            )
        mapping = dict(zip(schema.names, values))
        return cls(schema, mapping, publisher=publisher, sequence=sequence)

    def value(self, name: str) -> AttributeValue:
        """The value of attribute ``name``."""
        try:
            return self._values[name]
        except KeyError:
            raise EventError(f"event has no attribute {name!r}") from None

    def __getitem__(self, name: str) -> AttributeValue:
        return self.value(name)

    @property
    def values(self) -> Dict[str, AttributeValue]:
        """A copy of the attribute map."""
        return dict(self._values)

    def as_tuple(self) -> Tuple[AttributeValue, ...]:
        """Attribute values in schema order (as drawn in the paper's figures,
        e.g. ``a = <1, 2, 3, 1, 2>``).  Computed once — events are immutable,
        and the matching hot paths read this repeatedly."""
        values = self._tuple
        if values is None:
            values = self._tuple = self.schema.tuple_of(self._values)
        return values

    def with_metadata(
        self, *, publisher: Optional[str] = None, sequence: Optional[int] = None
    ) -> "Event":
        """Return a copy carrying the given delivery metadata."""
        return Event(
            self.schema,
            self._values,
            publisher=publisher if publisher is not None else self.publisher,
            sequence=sequence if sequence is not None else self.sequence,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.schema == other.schema and self._values == other._values

    def __hash__(self) -> int:
        return hash((self.schema, self.as_tuple()))

    def __iter__(self) -> Iterator[AttributeValue]:
        return iter(self.as_tuple())

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"Event({inner})"
