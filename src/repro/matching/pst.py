"""The Parallel Search Tree (PST) — Section 2 of the paper.

Subscriptions are organized into a tree in which each level tests one
attribute (in a fixed order) and each root-to-leaf path spells out one
predicate.  Branches out of a node are labeled with attribute tests:

* **value branches** — equality tests, stored in a hash map keyed by value so
  the applicable branch is found in O(1);
* **range branches** — range/interval tests, scanned linearly (there are
  normally few of them per node);
* the ***-branch** — "don't care", followed *in parallel* with any applicable
  value/range branch.

Matching starts at the root and follows, at each node, every branch whose
test accepts the event's value for that node's attribute, collecting the
subscriptions stored at reached leaves.  The paper counts a *matching step*
as the visitation of a single node; :class:`MatchResult` reports that count
so Chart 2 can be regenerated.

The tree also supports **trivial test elimination** (Section 2.1, item 2)
natively: each node records which attribute it tests via
``attribute_position``, so splicing out a node whose only child hangs off a
``*``-branch simply promotes the child (see
:meth:`ParallelSearchTree.eliminate_trivial_tests`).

Optional per-attribute **domains** (the finite value sets used throughout the
paper's simulations, e.g. "5 values per attribute") tighten the link-matching
annotations of :mod:`repro.core.annotation`: when a node's value branches
cover the whole domain, the annotator may skip the implicit all-No
alternative for unlisted values.
"""

from __future__ import annotations

import itertools
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import SubscriptionError
from repro.matching.events import Event
from repro.matching.predicates import AttributeTest, EqualityTest, Predicate, Subscription
from repro.matching.schema import AttributeValue, EventSchema

_node_ids = itertools.count(1)


class PSTNode:
    """A node of the Parallel Search Tree.

    ``attribute_position`` is the index (into the tree's attribute order) of
    the attribute this node tests; it is ``None`` for leaves.  Children:

    * ``value_branches`` maps an equality-test value to the child node,
    * ``range_branches`` lists ``(test, child)`` pairs for range tests,
    * ``star_child`` is the child along the ``*``-branch.

    ``subscriptions`` is non-empty only at leaves.
    """

    __slots__ = (
        "node_id",
        "attribute_position",
        "value_branches",
        "range_branches",
        "star_child",
        "subscriptions",
    )

    def __init__(self, attribute_position: Optional[int]) -> None:
        self.node_id = next(_node_ids)
        self.attribute_position = attribute_position
        self.value_branches: Dict[AttributeValue, "PSTNode"] = {}
        self.range_branches: List[Tuple[AttributeTest, "PSTNode"]] = []
        self.star_child: Optional["PSTNode"] = None
        self.subscriptions: List[Subscription] = []

    @property
    def is_leaf(self) -> bool:
        return self.attribute_position is None

    def children(self) -> Iterator["PSTNode"]:
        """All children: value branches, range branches, then the *-branch."""
        yield from self.value_branches.values()
        for _test, child in self.range_branches:
            yield child
        if self.star_child is not None:
            yield self.star_child

    @property
    def is_empty(self) -> bool:
        """True when the node has no children and no subscriptions."""
        return (
            not self.value_branches
            and not self.range_branches
            and self.star_child is None
            and not self.subscriptions
        )

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"PSTNode(leaf, {len(self.subscriptions)} subs)"
        return (
            f"PSTNode(attr#{self.attribute_position}, "
            f"{len(self.value_branches)} values, {len(self.range_branches)} ranges, "
            f"star={self.star_child is not None})"
        )


class MatchResult:
    """Outcome of a match: the satisfied subscriptions and the step count."""

    __slots__ = ("subscriptions", "steps")

    def __init__(self, subscriptions: List[Subscription], steps: int) -> None:
        self.subscriptions = subscriptions
        self.steps = steps

    @property
    def subscribers(self) -> Set[str]:
        """The distinct subscriber identities among the matches."""
        return {s.subscriber for s in self.subscriptions}

    def __repr__(self) -> str:
        return f"MatchResult({len(self.subscriptions)} subscriptions, {self.steps} steps)"


class ParallelSearchTree:
    """The PST over a schema, with insert, remove, and parallel-search match.

    Parameters
    ----------
    schema:
        The event schema.  Attributes are tested in the order given by
        ``attribute_order`` (a permutation of schema names) or, by default,
        schema declaration order.
    attribute_order:
        Optional explicit test order; see :mod:`repro.matching.ordering` for
        heuristics that compute a good one.
    domains:
        Optional map from attribute name to its finite set of possible
        values.  Only used to tighten link-matching annotations; matching
        itself never needs it.
    """

    def __init__(
        self,
        schema: EventSchema,
        *,
        attribute_order: Optional[Sequence[str]] = None,
        domains: Optional[Mapping[str, Iterable[AttributeValue]]] = None,
    ) -> None:
        self.schema = schema
        if attribute_order is None:
            order = tuple(schema.names)
        else:
            order = tuple(attribute_order)
            if sorted(order) != sorted(schema.names):
                raise SubscriptionError(
                    f"attribute_order {list(order)!r} is not a permutation of the schema"
                )
        self.attribute_order: Tuple[str, ...] = order
        self._positions: Tuple[int, ...] = tuple(schema.position_of(n) for n in order)
        self.domains: Dict[str, FrozenSet[AttributeValue]] = {}
        if domains:
            for name, values in domains.items():
                schema.position_of(name)  # validates the name
                self.domains[name] = frozenset(values)
        self.root = PSTNode(0)
        self._by_id: Dict[int, Subscription] = {}

    # ------------------------------------------------------------------
    # Introspection

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, subscription_id: object) -> bool:
        return subscription_id in self._by_id

    @property
    def subscriptions(self) -> List[Subscription]:
        """All registered subscriptions (unordered)."""
        return list(self._by_id.values())

    def attribute_at(self, position: int) -> str:
        """Name of the attribute tested at tree level ``position``."""
        return self.attribute_order[position]

    def nodes(self) -> Iterator[PSTNode]:
        """All nodes, preorder."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children())

    def node_count(self) -> int:
        return sum(1 for _ in self.nodes())

    def domain_of(self, position: int) -> Optional[FrozenSet[AttributeValue]]:
        """The declared finite domain of the attribute at ``position``, if any."""
        return self.domains.get(self.attribute_order[position])

    # ------------------------------------------------------------------
    # Insert / remove

    def _tests_in_order(self, predicate: Predicate) -> List[AttributeTest]:
        return [predicate.tests[position] for position in self._positions]

    def insert(self, subscription: Subscription) -> None:
        """Add a subscription, extending the tree along its path.

        Works on optimized (level-skipping) trees too: if the tree earlier
        spliced out a level this subscription constrains, the level is
        re-materialized on the affected path.
        """
        if subscription.predicate.schema != self.schema:
            raise SubscriptionError("subscription schema does not match the tree's schema")
        if subscription.subscription_id in self._by_id:
            raise SubscriptionError(
                f"subscription #{subscription.subscription_id} is already registered"
            )
        if not subscription.predicate.is_satisfiable:
            raise SubscriptionError(
                f"refusing to register unsatisfiable predicate "
                f"{subscription.predicate.describe()!r}"
            )
        tests = self._tests_in_order(subscription.predicate)
        self.root = self._insert(self.root, tests, 0, subscription)
        self._by_id[subscription.subscription_id] = subscription

    def _first_constrained(
        self, tests: List[AttributeTest], start: int, stop: int
    ) -> Optional[int]:
        """First position in ``[start, stop)`` with a non-don't-care test."""
        for position in range(start, stop):
            if not tests[position].is_dont_care:
                return position
        return None

    def _insert(
        self,
        node: PSTNode,
        tests: List[AttributeTest],
        level: int,
        subscription: Subscription,
    ) -> PSTNode:
        """Insert below ``node``, which covers levels ``level..`` — its own
        ``attribute_position`` may be greater than ``level`` on optimized
        trees.  Returns the (possibly replaced) node."""
        end = len(self.attribute_order)
        node_position = end if node.is_leaf else node.attribute_position
        assert node_position is not None
        target = self._first_constrained(tests, level, node_position)
        if target is not None:
            # The subscription constrains a level this path skips: insert a
            # fresh node at that level whose *-branch leads to the old path.
            # An empty old node (a drained root left behind by removals) is
            # dropped rather than grafted — grafting it would leak dead
            # structure that no search or removal would ever prune.
            replacement = PSTNode(target)
            if not node.is_empty:
                replacement.star_child = node
            return self._insert(replacement, tests, target, subscription)
        if node.is_leaf:
            node.subscriptions.append(subscription)
            return node
        test = tests[node_position]
        child = self._child_for_test(node, test)
        if child is None:
            child = self._grow_child(node, test, node_position)
        new_child = self._insert(child, tests, node_position + 1, subscription)
        if new_child is not child:
            self._unlink_child(node, test)
            self._attach_child(node, test, new_child)
        return node

    def _next_position(self, position: int) -> Optional[int]:
        """Tree level after ``position``; ``None`` means the next node is a leaf."""
        return position + 1 if position + 1 < len(self.attribute_order) else None

    def _child_for_test(self, node: PSTNode, test: AttributeTest) -> Optional[PSTNode]:
        """The existing child whose branch label equals ``test``, if any."""
        if test.is_dont_care:
            return node.star_child
        if isinstance(test, EqualityTest):
            return node.value_branches.get(test.value)
        for branch_test, child in node.range_branches:
            if branch_test == test:
                return child
        return None

    def _grow_child(self, node: PSTNode, test: AttributeTest, position: int) -> PSTNode:
        child = PSTNode(self._next_position(position))
        self._attach_child(node, test, child)
        return child

    def _attach_child(self, node: PSTNode, test: AttributeTest, child: PSTNode) -> None:
        if test.is_dont_care:
            node.star_child = child
        elif isinstance(test, EqualityTest):
            node.value_branches[test.value] = child
        else:
            node.range_branches.append((test, child))

    def remove(self, subscription_id: int) -> Subscription:
        """Remove a subscription by id, pruning now-empty branches.

        Returns the removed subscription; raises :class:`SubscriptionError`
        if the id is unknown.
        """
        subscription = self._by_id.pop(subscription_id, None)
        if subscription is None:
            raise SubscriptionError(f"unknown subscription id {subscription_id}")
        tests = self._tests_in_order(subscription.predicate)
        self._remove_along_path(self.root, tests, subscription)
        return subscription

    def _remove_along_path(
        self, node: PSTNode, tests: List[AttributeTest], subscription: Subscription
    ) -> bool:
        """Remove ``subscription`` below ``node``; returns True if ``node``
        became empty and should be pruned by its parent."""
        if node.is_leaf:
            try:
                node.subscriptions.remove(subscription)
            except ValueError:
                raise SubscriptionError(
                    f"subscription #{subscription.subscription_id} not found at its leaf "
                    "(tree structure was mutated externally?)"
                ) from None
            return node.is_empty
        position = node.attribute_position
        assert position is not None
        test = tests[position]
        child = self._child_for_test(node, test)
        if child is None:
            raise SubscriptionError(
                f"no branch for {test!r} while removing subscription "
                f"#{subscription.subscription_id}"
            )
        if self._remove_along_path(child, tests, subscription):
            self._unlink_child(node, test)
        return node.is_empty

    def _unlink_child(self, node: PSTNode, test: AttributeTest) -> None:
        if test.is_dont_care:
            node.star_child = None
        elif isinstance(test, EqualityTest):
            del node.value_branches[test.value]
        else:
            node.range_branches = [
                (branch_test, child)
                for branch_test, child in node.range_branches
                if branch_test != test
            ]

    # ------------------------------------------------------------------
    # Matching

    def match(self, event: Event) -> MatchResult:
        """Run the parallel search of Section 2 and return matches + steps.

        The search is implemented with an explicit stack rather than
        recursion: the "parallel subsearches" of the paper are independent,
        so visiting them in LIFO order is equivalent and avoids Python's
        recursion limit on deep schemas.
        """
        if event.schema != self.schema:
            raise SubscriptionError("event schema does not match the tree's schema")
        values = event.as_tuple()
        matched: List[Subscription] = []
        steps = 0
        stack: List[PSTNode] = [self.root]
        while stack:
            node = stack.pop()
            steps += 1
            if node.is_leaf:
                matched.extend(node.subscriptions)
                continue
            value = values[self._positions[node.attribute_position]]
            child = node.value_branches.get(value)
            if child is not None:
                stack.append(child)
            for test, range_child in node.range_branches:
                if test.evaluate(value):
                    stack.append(range_child)
            if node.star_child is not None:
                stack.append(node.star_child)
        return MatchResult(matched, steps)

    def match_brute_force(self, event: Event) -> List[Subscription]:
        """Reference implementation: evaluate every predicate directly.

        Used by tests to check that the PST search is semantics-preserving,
        and by the simulator's "match-first" straw-man protocol when step
        counting is irrelevant.
        """
        return [s for s in self._by_id.values() if s.predicate.matches(event)]

    # ------------------------------------------------------------------
    # Optimizations applied in place

    def eliminate_trivial_tests(self) -> int:
        """Section 2.1, item 2: splice out nodes whose only child hangs off a
        ``*``-branch.

        Such a node tests an attribute that none of the subscriptions below
        it constrain, so the test is pure overhead.  Returns the number of
        nodes eliminated.  The tree remains a valid PST; node
        ``attribute_position`` values simply skip the eliminated levels.

        Note: after elimination, newly inserted subscriptions may re-create
        spliced levels; callers that mix heavy insertion with matching should
        re-run this periodically (the broker engine does).
        """
        eliminated = 0

        def splice(node: PSTNode) -> PSTNode:
            nonlocal eliminated
            while (
                not node.is_leaf
                and node.star_child is not None
                and not node.value_branches
                and not node.range_branches
            ):
                node = node.star_child
                eliminated += 1
            if not node.is_leaf:
                for value, child in list(node.value_branches.items()):
                    node.value_branches[value] = splice(child)
                node.range_branches = [
                    (test, splice(child)) for test, child in node.range_branches
                ]
                if node.star_child is not None:
                    node.star_child = splice(node.star_child)
            return node

        self.root = splice(self.root)
        return eliminated

    def __repr__(self) -> str:
        return (
            f"ParallelSearchTree({len(self._by_id)} subscriptions, "
            f"{self.node_count()} nodes, order={list(self.attribute_order)!r})"
        )


def build_pst(
    schema: EventSchema,
    subscriptions: Iterable[Subscription],
    *,
    attribute_order: Optional[Sequence[str]] = None,
    domains: Optional[Mapping[str, Iterable[AttributeValue]]] = None,
) -> ParallelSearchTree:
    """Convenience constructor: build a PST holding ``subscriptions``."""
    tree = ParallelSearchTree(schema, attribute_order=attribute_order, domains=domains)
    for subscription in subscriptions:
        tree.insert(subscription)
    return tree
