"""Parser for the subscription expression language.

The paper writes subscriptions as conjunctions of attribute comparisons::

    issue='IBM' & price < 120 & volume > 1000

Grammar (conjunctive only, matching the paper's predicate model)::

    expression := clause ( ('&' | 'and') clause )*
    clause     := NAME op literal | NAME '=' '*' | '(' expression ')'
    op         := '=' | '==' | '!=' | '<' | '<=' | '>' | '>='
    literal    := STRING | NUMBER | 'true' | 'false'

Strings may be single- or double-quoted with backslash escapes.  Numbers with
a ``.`` or exponent parse as floats, others as integers.  ``attr = *`` is an
explicit don't-care (equivalent to omitting the attribute).

The entry point is :func:`parse_predicate`, which validates names and types
against an :class:`~repro.matching.schema.EventSchema` and returns a
:class:`~repro.matching.predicates.Predicate`.
"""

from __future__ import annotations

import enum
from typing import Dict, List, NamedTuple, Sequence, Tuple, Union

from repro.errors import ParseError
from repro.matching.predicates import (
    DONT_CARE,
    AttributeTest,
    EqualityTest,
    Predicate,
    RangeOp,
    RangeTest,
)
from repro.matching.schema import EventSchema


class TokenType(enum.Enum):
    NAME = "name"
    STRING = "string"
    NUMBER = "number"
    OPERATOR = "operator"
    AND = "and"
    STAR = "star"
    LPAREN = "("
    RPAREN = ")"
    END = "end"


class Token(NamedTuple):
    type: TokenType
    value: Union[str, int, float, bool]
    position: int


_OPERATORS = ("<=", ">=", "!=", "==", "<", ">", "=")
_KEYWORDS = {"and": TokenType.AND, "true": True, "false": False}


def tokenize(text: str) -> List[Token]:
    """Split ``text`` into tokens, raising :class:`ParseError` on bad input."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "&":
            # accept both '&' and '&&'
            j = i + 2 if text[i : i + 2] == "&&" else i + 1
            tokens.append(Token(TokenType.AND, "&", i))
            i = j
            continue
        if ch == "*":
            tokens.append(Token(TokenType.STAR, "*", i))
            i += 1
            continue
        if ch == "(":
            tokens.append(Token(TokenType.LPAREN, "(", i))
            i += 1
            continue
        if ch == ")":
            tokens.append(Token(TokenType.RPAREN, ")", i))
            i += 1
            continue
        matched_op = next((op for op in _OPERATORS if text.startswith(op, i)), None)
        if matched_op is not None:
            tokens.append(Token(TokenType.OPERATOR, matched_op, i))
            i += len(matched_op)
            continue
        if ch in "'\"":
            value, i = _read_string(text, i)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        if ch.isdigit() or (
            ch in "+-." and i + 1 < n and (text[i + 1].isdigit() or text[i + 1] == ".")
        ):
            value, i = _read_number(text, i)
            tokens.append(Token(TokenType.NUMBER, value, i))
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            lowered = word.lower()
            if lowered == "and":
                tokens.append(Token(TokenType.AND, word, i))
            elif lowered in ("true", "false"):
                tokens.append(Token(TokenType.NUMBER, lowered == "true", i))
            else:
                tokens.append(Token(TokenType.NAME, word, i))
            i = j
            continue
        raise ParseError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token(TokenType.END, "", n))
    return tokens


_HEX_ESCAPES = {"x": 2, "u": 4, "U": 8}


def _read_string(text: str, start: int) -> Tuple[str, int]:
    """Read a quoted string with Python-style escapes (so ``repr`` output —
    what :meth:`Predicate.describe` emits for string values — parses back)."""
    quote = text[start]
    i = start + 1
    out: List[str] = []
    while i < len(text):
        ch = text[i]
        if ch == "\\":
            if i + 1 >= len(text):
                raise ParseError("dangling escape in string literal", position=i)
            escape = text[i + 1]
            if escape in _HEX_ESCAPES:
                digits = _HEX_ESCAPES[escape]
                hex_text = text[i + 2 : i + 2 + digits]
                if len(hex_text) < digits:
                    raise ParseError("truncated hex escape", position=i)
                try:
                    out.append(chr(int(hex_text, 16)))
                except (ValueError, OverflowError):
                    raise ParseError(f"bad hex escape \\{escape}{hex_text}", position=i) from None
                i += 2 + digits
                continue
            out.append(
                {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", quote: quote}.get(
                    escape, escape
                )
            )
            i += 2
            continue
        if ch == quote:
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise ParseError("unterminated string literal", position=start)


def _read_number(text: str, start: int) -> Tuple[Union[int, float], int]:
    i = start
    if text[i] in "+-":
        i += 1
    begin_digits = i
    is_float = False
    while i < len(text) and (text[i].isdigit() or text[i] in ".eE+-"):
        if text[i] in "+-" and text[i - 1] not in "eE":
            break
        if text[i] in ".eE":
            is_float = True
        i += 1
    literal = text[start:i]
    if i == begin_digits:
        raise ParseError(f"malformed number at {start}", position=start)
    try:
        return (float(literal) if is_float else int(literal)), i
    except ValueError:
        raise ParseError(f"malformed number {literal!r}", position=start) from None


class _Parser:
    """Recursive-descent parser producing per-attribute test lists."""

    def __init__(self, tokens: Sequence[Token], schema: EventSchema) -> None:
        self._tokens = tokens
        self._schema = schema
        self._position = 0
        self.clauses: Dict[str, List[AttributeTest]] = {}

    def _peek(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        self._position += 1
        return token

    def _expect(self, type: TokenType) -> Token:
        token = self._advance()
        if token.type is not type:
            raise ParseError(
                f"expected {type.value}, found {token.value!r}", position=token.position
            )
        return token

    def parse(self) -> Dict[str, List[AttributeTest]]:
        self._expression()
        end = self._peek()
        if end.type is not TokenType.END:
            raise ParseError(f"trailing input at {end.value!r}", position=end.position)
        return self.clauses

    def _expression(self) -> None:
        self._clause()
        while self._peek().type is TokenType.AND:
            self._advance()
            self._clause()

    def _clause(self) -> None:
        token = self._peek()
        if token.type is TokenType.LPAREN:
            self._advance()
            self._expression()
            self._expect(TokenType.RPAREN)
            return
        name_token = self._expect(TokenType.NAME)
        name = str(name_token.value)
        if name not in self._schema:
            raise ParseError(f"unknown attribute {name!r}", position=name_token.position)
        op_token = self._expect(TokenType.OPERATOR)
        symbol = str(op_token.value)
        value_token = self._advance()
        tests = self.clauses.setdefault(name, [])
        if value_token.type is TokenType.STAR:
            if symbol not in ("=", "=="):
                raise ParseError("'*' is only valid with '='", position=value_token.position)
            tests.append(DONT_CARE)
            return
        if value_token.type not in (TokenType.STRING, TokenType.NUMBER):
            raise ParseError(
                f"expected a literal, found {value_token.value!r}", position=value_token.position
            )
        value = value_token.value
        if symbol in ("=", "=="):
            tests.append(EqualityTest(value))
        else:
            tests.append(RangeTest(RangeOp.from_symbol(symbol), value))


def parse_predicate(schema: EventSchema, text: str) -> Predicate:
    """Parse ``text`` into a :class:`Predicate` over ``schema``.

    >>> schema = stock_trade_schema()
    >>> p = parse_predicate(schema, "issue='IBM' & price<120 & volume>1000")
    >>> p.describe()
    "issue='IBM' & price<120 & volume>1000"
    """
    stripped = text.strip()
    if not stripped or stripped == "*":
        return Predicate(schema, {})
    clauses = _Parser(tokenize(stripped), schema).parse()
    return Predicate(schema, clauses)
