"""Lowering a Parallel Search Tree into flat array-based matching kernels.

The object-graph matcher (:class:`~repro.matching.pst.ParallelSearchTree` +
:class:`~repro.core.annotation.TreeAnnotation` +
:class:`~repro.core.link_matcher.LinkMatcher`) walks ``PSTNode`` instances and
allocates a fresh immutable :class:`~repro.core.trits.TritVector` per
refinement step.  That is the hottest path of the whole reproduction — every
broker runs it for every event — so this module *compiles* a built tree into
a :class:`CompiledProgram`: a set of flat parallel arrays indexed by node
number, over which two iterative (explicit-stack, no recursion, no
per-visit allocation) kernels run:

* :meth:`CompiledProgram.match` — the Section 2 parallel search;
* :meth:`CompiledProgram.match_links` — the Section 3.3 refinement search,
  with trit masks packed as two integer bitmasks (``yes_bits``/``maybe_bits``)
  per :mod:`repro.core.trits`.

The kernel *loops* themselves live in :mod:`repro.matching.backends` behind
the :class:`~repro.matching.backends.KernelBackend` interface (``interp``
is the reference loop, ``vector`` the columnar bulk-array one); this module
owns everything execution-independent — lowering, patching, annotation,
projection caching, and batch deduplication — and delegates the raw walks
to the program's :attr:`~CompiledProgram.backend`.

Array layout (one slot per node, node 0 is always the root):

========================  ====================================================
``event_pos[n]``          schema position of the attribute node ``n`` tests,
                          or ``-1`` for a leaf (doubles as the node-kind flag)
``level[n]``              the tree level (``PSTNode.attribute_position``)
``value_tables[n]``       dict mapping *interned value ids* to child indices,
                          or ``None`` when the node has no value branches
``range_start/end[n]``    CSR slice of ``range_tests``/``range_children``
``star[n]``               child index of the ``*``-branch, ``-1`` when absent
``sub_start/end[n]``      CSR slice of ``subs_flat`` (leaf subscriptions)
``ann_yes/ann_maybe[n]``  the node's trit annotation, packed
========================  ====================================================

Attribute values are interned once into ``value_ids`` (a plain dict, so
``1``/``1.0``/``True`` collapse exactly as they do as PST hash-branch keys);
a match then interns the event's values once and performs int-keyed lookups.

Both kernels intentionally visit nodes in the same order and count the same
``steps`` as the object-graph implementations, so the paper's step-count
charts (Chart 2) are bit-for-bit unchanged; only wall-clock time improves.

**Incremental recompilation.**  Subscription churn does not force a full
rebuild: :meth:`CompiledProgram.patch` re-lowers only the root-to-leaf path
selected by the changed predicate (the same walk as
``TreeAnnotation.update_path``), appending new CSR slices at the array ends
and repointing the slice bounds.  Superseded slices become garbage; when the
accumulated waste outgrows the live structure, ``patch`` refuses and the
owning engine performs a fresh :func:`compile_tree`.

**Batching and the projection cache.**  The kernels only ever read an event
at the *tested* attribute positions (the ``event_pos`` values of live
nodes), so two events that agree on that projection provably take the same
path through the arrays and produce the same matches, step counts, and
refined link masks.  Two mechanisms exploit this:

* :meth:`CompiledProgram.match_batch` — a batched kernel that walks the
  arrays with a frontier of ``(node, event-subset)`` pairs, so events
  sharing value-branch prefixes traverse the shared nodes once; subsets
  that narrow to a single event fall back to the single-event inner loop.
* a per-program :class:`ProjectionCache` — a bounded LRU keyed by the
  tested-attribute projection (plus the packed initialization mask for link
  matching) that memoizes whole match results across calls.  The cache
  lives on the program, so a full recompile starts empty by construction;
  :meth:`CompiledProgram.patch` flushes it explicitly (a patched program
  answers differently for the same projection) and charges the discarded
  residency toward the waste that triggers a full recompile.  Hit, miss,
  and flush counts are exported through :mod:`repro.obs` as
  ``match.cache.hit`` / ``match.cache.miss`` / ``match.cache.flush``, and a
  ``match.cache.residency`` gauge (entries/capacity, per cache kind) makes
  cache pressure visible alongside the rates.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import RoutingError, SubscriptionError
from repro.core.trits import (
    alternative_combine_bits,
    parallel_combine_bits,
)
from repro.matching.backends import DEFAULT_BACKEND, KernelBackend, create_backend
from repro.matching.events import Event
from repro.matching.predicates import (
    AttributeTest,
    EqualityTest,
    Predicate,
    Subscription,
)
from repro.matching.pst import MatchResult, ParallelSearchTree, PSTNode
from repro.matching.schema import AttributeValue, EventSchema
from repro.obs import get_registry

#: Maps a subscription to the broker-local (virtual) link position through
#: which its subscriber is best reached (same contract as TreeAnnotation's).
#: An aggregating layer may instead return an *iterable* of positions — a
#: deduplicated leaf stands for several subscribers, so its annotation is
#: the union of their link bits (see :mod:`repro.matching.aggregation`).
LinkOfSubscriber = Callable[[Subscription], Union[int, Sequence[int]]]

#: Default capacity of each per-program projection cache; 0 disables caching.
DEFAULT_MATCH_CACHE_CAPACITY = 4096

#: Fraction of flushed cache entries charged to patch waste: a patch that
#: discards a hot cache is costing real work the structural waste metric
#: cannot see, so residency pushes the program toward a compact recompile.
_CACHE_RESIDENCY_WASTE_SHIFT = 2  # charge = flushed_entries >> 2

#: Per-process unique ids for compiled programs; ``(program_uid,
#: generation)`` is the identity the procpool backend keys its
#: shared-memory publications on (``id()`` can be recycled, this cannot).
_program_uids = itertools.count()


class ProjectionCache:
    """A bounded LRU from tested-attribute projections to match results.

    Keys are whatever the owning program derives from an event (the
    projection tuple for matching; ``(projection, yes_bits, maybe_bits)``
    for link matching) — the cache itself only orders and bounds entries.
    ``hits`` / ``misses`` / ``flushes`` are plain-int mirrors of the obs
    counters so benchmarks can read rates without a registry snapshot.
    """

    __slots__ = (
        "capacity",
        "_entries",
        "hits",
        "misses",
        "flushes",
        "_obs_hits",
        "_obs_misses",
        "_obs_flushes",
        "_obs_residency",
    )

    def __init__(self, capacity: int, *, kind: str = "match") -> None:
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.flushes = 0
        registry = get_registry()
        self._obs_hits = registry.counter("match.cache.hit", cache=kind)
        self._obs_misses = registry.counter("match.cache.miss", cache=kind)
        self._obs_flushes = registry.counter("match.cache.flush", cache=kind)
        self._obs_residency = registry.gauge("match.cache.residency", cache=kind)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key):
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._obs_misses.inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self._obs_hits.inc()
        return entry

    def put(self, key, value) -> None:
        entries = self._entries
        entries[key] = value
        entries.move_to_end(key)
        if len(entries) > self.capacity:
            entries.popitem(last=False)
        self._obs_residency.set(len(entries) / self.capacity)

    def evict_if(self, stale) -> int:
        """Drop entries ``stale(key, value)`` flags; returns how many.

        The surgical alternative to :meth:`flush` for callers whose keys are
        stable across index mutations (the sharded engine's event caches):
        only entries a subscription change actually touched go, the rest
        keep serving hits."""
        entries = self._entries
        doomed = [key for key, value in entries.items() if stale(key, value)]
        for key in doomed:
            del entries[key]
        if doomed:
            self._obs_residency.set(len(entries) / self.capacity)
        return len(doomed)

    def flush(self) -> int:
        """Drop every entry; returns how many were resident.  Counted as a
        flush event only when something was actually dropped."""
        flushed = len(self._entries)
        if flushed:
            self._entries.clear()
            self.flushes += 1
            self._obs_flushes.inc()
            self._obs_residency.set(0.0)
        return flushed

    def __repr__(self) -> str:
        return (
            f"ProjectionCache({len(self._entries)}/{self.capacity} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )


class CompiledProgram:
    """The flat, kernel-ready form of one Parallel Search Tree.

    Build with :func:`compile_tree`; rebuild or :meth:`patch` after the
    source tree changes.  Link annotations are attached separately with
    :meth:`annotate` (matching alone never needs them).
    """

    __slots__ = (
        "schema",
        "attribute_order",
        "_positions",
        "_domain_sorted",
        # node arrays
        "event_pos",
        "level",
        "value_tables",
        "range_start",
        "range_end",
        "star",
        "sub_start",
        "sub_end",
        "ann_yes",
        "ann_maybe",
        # flat pools
        "range_tests",
        "range_children",
        "subs_flat",
        # fused per-node view for the kernels
        "_records",
        # interning / bookkeeping
        "value_ids",
        "index_of_node",
        "num_links",
        "_link_of_subscriber",
        "_waste",
        "_schema_ok",
        # execution backend
        "backend",
        "generation",
        "backend_state",
        "program_uid",
        "_obs_kernel_calls",
        "_obs_kernel_events",
        # projection caching
        "_tested_positions",
        "_tested_sorted",
        "match_cache",
        "link_cache",
        # digest projection (subscription id -> live leaf index)
        "_sub_leaf",
        "_sub_leaf_generation",
    )

    def __init__(
        self,
        tree: ParallelSearchTree,
        *,
        cache_capacity: int = DEFAULT_MATCH_CACHE_CAPACITY,
        backend: Union[str, KernelBackend, None] = None,
    ) -> None:
        self.schema = tree.schema
        self.attribute_order = tree.attribute_order
        self._positions: Tuple[int, ...] = tuple(
            tree.schema.position_of(name) for name in tree.attribute_order
        )
        self._domain_sorted: List[Optional[List[AttributeValue]]] = [
            (sorted(domain, key=repr) if domain is not None else None)
            for domain in (
                tree.domain_of(position) for position in range(len(self._positions))
            )
        ]
        self.event_pos: List[int] = []
        self.level: List[int] = []
        self.value_tables: List[Optional[Dict[int, int]]] = []
        self.range_start: List[int] = []
        self.range_end: List[int] = []
        self.star: List[int] = []
        self.sub_start: List[int] = []
        self.sub_end: List[int] = []
        self.ann_yes: List[int] = []
        self.ann_maybe: List[int] = []
        self.range_tests: List[AttributeTest] = []
        self.range_children: List[int] = []
        self.subs_flat: List[Subscription] = []
        self._records: List[tuple] = []
        self.value_ids: Dict[AttributeValue, int] = {}
        self.index_of_node: Dict[int, int] = {}
        self.num_links: Optional[int] = None
        self._link_of_subscriber: Optional[LinkOfSubscriber] = None
        self._waste = 0
        #: Last foreign schema object that deep-compared equal to ours —
        #: kept as a strong reference so the ``is`` fast path in
        #: :meth:`_schema_mismatch` cannot be fooled by id reuse.
        self._schema_ok: Optional[EventSchema] = None
        if backend is None:
            backend = DEFAULT_BACKEND
        self.backend: KernelBackend = (
            create_backend(backend) if isinstance(backend, str) else backend
        )
        #: Bumped on every mutation of the record arrays (patch, annotate);
        #: backends key derived state on it and republish/rebuild lazily.
        self.generation = 0
        #: Backend-owned scratch (vector's columnar index, …), cleared on
        #: every generation bump.
        self.backend_state: Dict[str, object] = {}
        self.program_uid = next(_program_uids)
        registry = get_registry()
        self._obs_kernel_calls = registry.counter(
            "engine.backend.kernel_calls", backend=self.backend.name
        )
        self._obs_kernel_events = registry.counter(
            "engine.backend.kernel_events", backend=self.backend.name
        )
        self._tested_positions: set = set()
        self._tested_sorted: Tuple[int, ...] = ()
        self.match_cache: Optional[ProjectionCache] = (
            ProjectionCache(cache_capacity, kind="match") if cache_capacity > 0 else None
        )
        self.link_cache: Optional[ProjectionCache] = (
            ProjectionCache(cache_capacity, kind="links") if cache_capacity > 0 else None
        )
        self._sub_leaf: Optional[Dict[int, int]] = None
        self._sub_leaf_generation = -1
        self._ensure_index(tree.root)

    # ------------------------------------------------------------------
    # Lowering

    def _intern(self, value: AttributeValue) -> int:
        value_id = self.value_ids.get(value)
        if value_id is None:
            value_id = len(self.value_ids)
            self.value_ids[value] = value_id
        return value_id

    def _ensure_index(self, node: PSTNode) -> int:
        """Index of ``node`` in the arrays, lowering it (and any children not
        yet lowered) on first sight.  Indices are stable once assigned."""
        index = self.index_of_node.get(node.node_id)
        if index is not None:
            return index
        index = len(self.event_pos)
        self.index_of_node[node.node_id] = index
        # Reserve the slot before descending so children see a stable parent.
        self.event_pos.append(-1)
        self.level.append(-1)
        self.value_tables.append(None)
        self.range_start.append(0)
        self.range_end.append(0)
        self.star.append(-1)
        self.sub_start.append(0)
        self.sub_end.append(0)
        self.ann_yes.append(0)
        self.ann_maybe.append(0)
        self._records.append(())
        if node.is_leaf:
            self._write_leaf_subs(index, node)
            self._refresh_record(index)
            return index
        position = self._positions[node.attribute_position]
        self.event_pos[index] = position
        self.level[index] = node.attribute_position
        if position not in self._tested_positions:
            # Tested positions only ever grow (a pruned level just makes the
            # projection finer than necessary, which stays correct); growth
            # happens through patch(), which flushes the caches anyway.
            self._tested_positions.add(position)
            self._tested_sorted = tuple(sorted(self._tested_positions))
        if node.value_branches:
            self.value_tables[index] = {
                self._intern(value): self._ensure_index(child)
                for value, child in node.value_branches.items()
            }
        if node.range_branches:
            self._write_range_slice(index, node)
        if node.star_child is not None:
            self.star[index] = self._ensure_index(node.star_child)
        self._refresh_record(index)
        return index

    def _refresh_record(self, index: int) -> None:
        """Rebuild the fused kernel record of node ``index`` from the arrays.

        The kernels read one tuple per visit —
        ``(event_position, value_table, range_pairs, star_child, leaf_subs)``
        — instead of indexing five parallel arrays; a record is just a view
        (the value table is the *same* dict object as ``value_tables[n]``)
        and must be refreshed whenever the node's slices or star change.
        """
        position = self.event_pos[index]
        if position < 0:
            subs = self.subs_flat[self.sub_start[index] : self.sub_end[index]]
            self._records[index] = (-1, None, None, -1, subs or None)
            return
        begin, end = self.range_start[index], self.range_end[index]
        ranges = (
            tuple(
                (self.range_tests[j], self.range_children[j]) for j in range(begin, end)
            )
            if begin != end
            else None
        )
        self._records[index] = (
            position,
            self.value_tables[index],
            ranges,
            self.star[index],
            None,
        )

    def _write_leaf_subs(self, index: int, node: PSTNode) -> None:
        self.sub_start[index] = len(self.subs_flat)
        self.subs_flat.extend(node.subscriptions)
        self.sub_end[index] = len(self.subs_flat)

    def _write_range_slice(self, index: int, node: PSTNode) -> None:
        # Lower the children *before* appending: _ensure_index recurses and
        # may itself append range slices, which must not interleave with ours.
        lowered = [
            (test, self._ensure_index(child)) for test, child in node.range_branches
        ]
        self.range_start[index] = len(self.range_tests)
        for test, child_index in lowered:
            self.range_tests.append(test)
            self.range_children.append(child_index)
        self.range_end[index] = len(self.range_tests)

    @property
    def node_count(self) -> int:
        """Slots in the node arrays (live + superseded-by-patch garbage)."""
        return len(self.event_pos)

    @property
    def waste(self) -> int:
        """Pool entries orphaned by patches since the last full compile."""
        return self._waste

    # ------------------------------------------------------------------
    # Annotation (packed trit vectors)

    @property
    def annotated(self) -> bool:
        return self.num_links is not None

    def annotate(self, num_links: int, link_of_subscriber: LinkOfSubscriber) -> None:
        """(Re)compute all packed per-node annotations bottom-up.

        Mirrors :class:`~repro.core.annotation.TreeAnnotation` exactly (same
        per-domain-value recipe, same conservative open-domain recipe); the
        combines are commutative and associative, so evaluating them over
        packed masks yields identical trits.
        """
        if num_links < 0:
            raise RoutingError("num_links must be >= 0")
        self.num_links = num_links
        self._link_of_subscriber = link_of_subscriber
        if self.link_cache is not None:
            # New annotations change refinement results; match results only
            # depend on the tree structure, so the match cache survives.
            self.link_cache.flush()
        # The annotation arrays are part of the record surface backends
        # execute over (the link kernels read them), so re-annotation moves
        # the generation like any other array mutation.
        self._bump_generation()
        stack: List[Tuple[int, bool]] = [(0, False)]
        event_pos = self.event_pos
        while stack:
            index, processed = stack.pop()
            if processed or event_pos[index] < 0:
                self.ann_yes[index], self.ann_maybe[index] = self._node_annotation(index)
                continue
            stack.append((index, True))
            table = self.value_tables[index]
            if table is not None:
                for child in table.values():
                    stack.append((child, False))
            for j in range(self.range_start[index], self.range_end[index]):
                stack.append((self.range_children[j], False))
            if self.star[index] >= 0:
                stack.append((self.star[index], False))

    def _node_annotation(self, index: int) -> Tuple[int, int]:
        if self.event_pos[index] < 0:
            return self._leaf_annotation(index)
        return self._combined_annotation(index)

    def _leaf_annotation(self, index: int) -> Tuple[int, int]:
        assert self.num_links is not None and self._link_of_subscriber is not None
        yes = 0
        for subscription in self.subs_flat[self.sub_start[index] : self.sub_end[index]]:
            mapped = self._link_of_subscriber(subscription)
            # Plain engines map a subscription to one position; an
            # aggregating layer maps a deduplicated leaf to the union of its
            # member subscribers' positions.  -1 means unreachable either way.
            positions = (mapped,) if isinstance(mapped, int) else mapped
            for position in positions:
                if position < 0:
                    continue  # subscriber unreachable — no link to light
                if position >= self.num_links:
                    raise RoutingError(
                        f"link position {position} out of range for {subscription!r}"
                    )
                yes |= 1 << position
        return yes, 0

    def _combined_annotation(self, index: int) -> Tuple[int, int]:
        assert self.num_links is not None
        full = (1 << self.num_links) - 1
        ann_yes = self.ann_yes
        ann_maybe = self.ann_maybe
        star_index = self.star[index]
        if star_index >= 0:
            star = (ann_yes[star_index], ann_maybe[star_index])
        else:
            star = (0, 0)
        table = self.value_tables[index]
        r0, r1 = self.range_start[index], self.range_end[index]
        domain = self._domain_sorted[self.level[index]]
        if domain is not None:
            # Exhaustive domain: Alternative Combine over the exact outcome
            # of every possible event value (each outcome Parallel-Combines
            # the branches that value satisfies plus the *-branch).
            out: Optional[Tuple[int, int]] = None
            for value in domain:
                part = star
                if table is not None:
                    value_id = self.value_ids.get(value)
                    child = table.get(value_id) if value_id is not None else None
                    if child is not None:
                        part = parallel_combine_bits(
                            part[0], part[1], ann_yes[child], ann_maybe[child]
                        )
                for j in range(r0, r1):
                    if self.range_tests[j].evaluate(value):
                        child = self.range_children[j]
                        part = parallel_combine_bits(
                            part[0], part[1], ann_yes[child], ann_maybe[child]
                        )
                if out is None:
                    out = part
                else:
                    out = alternative_combine_bits(
                        out[0], out[1], part[0], part[1], full
                    )
            return out if out is not None else (0, 0)
        # Open domain: value/range children Alternative-Combined with an
        # implicit all-No for unlisted values, then Parallel with the *-branch.
        acc: Optional[Tuple[int, int]] = None
        children: List[int] = list(table.values()) if table is not None else []
        children.extend(self.range_children[r0:r1])
        for child in children:
            part = (ann_yes[child], ann_maybe[child])
            acc = part if acc is None else alternative_combine_bits(
                acc[0], acc[1], part[0], part[1], full
            )
        if acc is None:
            acc = (0, 0)
        else:
            acc = alternative_combine_bits(acc[0], acc[1], 0, 0, full)
        return parallel_combine_bits(acc[0], acc[1], star[0], star[1])

    # ------------------------------------------------------------------
    # Kernels

    @property
    def tested_positions(self) -> Tuple[int, ...]:
        """Schema positions the compiled tree actually tests, sorted."""
        return self._tested_sorted

    def _schema_mismatch(self, event: Event) -> bool:
        """O(1) schema guard for the per-event hot paths.

        Schemas are immutable value objects, so one deep comparison per
        foreign schema *object* suffices; after that, identity settles it
        (the matched object is kept in :attr:`_schema_ok` so its id cannot
        be recycled)."""
        schema = event.schema
        if schema is self.schema or schema is self._schema_ok:
            return False
        if schema != self.schema:
            return True
        self._schema_ok = schema
        return False

    def projection_key(self, event: Event) -> Tuple[AttributeValue, ...]:
        """The event's values at the tested positions — the cache key.

        Two events with equal projections provably take the same path
        through the arrays (the kernels never read any other position), so
        they share match results, step counts, and refined link masks.
        """
        values = event.as_tuple()
        return tuple(values[position] for position in self._tested_sorted)

    def match(self, event: Event) -> MatchResult:
        """The Section 2 parallel search over the flat arrays.

        Visits exactly the nodes ``ParallelSearchTree.match`` visits — every
        node is appended to the work queue once and processed once, so the
        ``steps`` count is identical (it is simply the final queue length);
        only the visit *order* differs (breadth-first rather than LIFO),
        which neither the match set nor the step count observes.  The walk
        itself is the :attr:`backend`'s single-event kernel; every backend
        returns what ``interp`` returns, bit for bit.

        Results are memoized in :attr:`match_cache` under the event's
        :meth:`projection_key`; cached subscription lists are shared between
        results and must be treated as read-only by callers.
        """
        if self._schema_mismatch(event):
            raise SubscriptionError("event schema does not match the tree's schema")
        cache = self.match_cache
        key: Optional[Tuple[AttributeValue, ...]] = None
        if cache is not None:
            key = self.projection_key(event)
            entry = cache.get(key)
            if entry is not None:
                return MatchResult(entry[0], entry[1])
        matched, steps = self.backend.match(self, event.as_tuple())
        self._obs_kernel_calls.inc()
        self._obs_kernel_events.inc()
        if cache is not None:
            cache.put(key, (matched, steps))
        return MatchResult(matched, steps)

    def match_batch(self, events: Sequence[Event]) -> List[MatchResult]:
        """Match a batch of events through one shared array walk.

        Per event this is exactly :meth:`match` (same match set, same step
        count); across the batch, events are first deduplicated by
        :meth:`projection_key` — repeats are served from :attr:`match_cache`
        or from the batch-local result — and the remaining unique
        projections go through the :attr:`backend`'s batch kernel in one
        call (``interp`` walks them with a shared ``(node, event-subset)``
        frontier; ``vector`` advances the whole frontier per level with
        bulk array operations).
        """
        if not events:
            return []
        if len(events) == 1:
            return [self.match(events[0])]
        results: List[Optional[Tuple[List[Subscription], int]]] = [None] * len(events)
        cache = self.match_cache
        pending: Dict[Tuple[AttributeValue, ...], List[int]] = {}
        representatives: List[Tuple[Tuple[AttributeValue, ...], Event]] = []
        for i, event in enumerate(events):
            if self._schema_mismatch(event):
                raise SubscriptionError("event schema does not match the tree's schema")
            key = self.projection_key(event)
            if cache is not None:
                entry = cache.get(key)
                if entry is not None:
                    results[i] = entry
                    continue
            group = pending.get(key)
            if group is None:
                pending[key] = [i]
                representatives.append((key, event))
            else:
                group.append(i)
        if representatives:
            kernel_out = self.backend.match_batch(
                self, [event.as_tuple() for _key, event in representatives]
            )
            self._obs_kernel_calls.inc()
            self._obs_kernel_events.inc(len(representatives))
            for (key, _event), entry in zip(representatives, kernel_out):
                if cache is not None:
                    cache.put(key, entry)
                for i in pending[key]:
                    results[i] = entry
        return [MatchResult(entry[0], entry[1]) for entry in results]

    def match_links(
        self, event: Event, yes_bits: int, maybe_bits: int
    ) -> Tuple[int, int]:
        """The Section 3.3 refinement search over packed masks.

        Takes the initialization mask as ``(yes_bits, maybe_bits)`` and
        returns ``(final_yes_bits, steps)``; the final mask has no Maybe
        trits by construction, so the Yes bits determine it completely.
        An explicit frame stack mirrors ``LinkMatcher``'s recursion exactly
        — same visit order, same early exits, same ``steps``.

        Results are memoized in :attr:`link_cache` under
        ``(projection_key, yes_bits, maybe_bits)`` — the refinement reads
        nothing else — and the cache is flushed whenever the annotations
        change (:meth:`annotate`, :meth:`patch`).
        """
        if not self.annotated:
            raise RoutingError("program has no link annotations — call annotate()")
        if self._schema_mismatch(event):
            raise RoutingError("event schema does not match the annotated tree")
        cache = self.link_cache
        if cache is None:
            return self._link_kernel(event, yes_bits, maybe_bits)
        key = (self.projection_key(event), yes_bits, maybe_bits)
        entry = cache.get(key)
        if entry is not None:
            return entry
        result = self._link_kernel(event, yes_bits, maybe_bits)
        cache.put(key, result)
        return result

    def _link_kernel(
        self, event: Event, yes_bits: int, maybe_bits: int
    ) -> Tuple[int, int]:
        result = self.backend.match_links(self, event.as_tuple(), yes_bits, maybe_bits)
        self._obs_kernel_calls.inc()
        self._obs_kernel_events.inc()
        return result

    def match_links_batch(
        self, events: Sequence[Event], yes_bits: int, maybe_bits: int
    ) -> List[Tuple[int, int]]:
        """Refine one shared initialization mask for a batch of events.

        Per event this is exactly :meth:`match_links`; across the batch,
        events are deduplicated by :meth:`projection_key` (all of them share
        the initialization mask, so equal projections provably yield equal
        refinements) and repeats are served from :attr:`link_cache` or the
        batch-local result.
        """
        if not events:
            return []
        if not self.annotated:
            raise RoutingError("program has no link annotations — call annotate()")
        results: List[Optional[Tuple[int, int]]] = [None] * len(events)
        cache = self.link_cache
        pending: Dict[Tuple, List[int]] = {}
        representatives: List[Tuple[Tuple, Event]] = []
        for i, event in enumerate(events):
            if self._schema_mismatch(event):
                raise RoutingError("event schema does not match the annotated tree")
            key = (self.projection_key(event), yes_bits, maybe_bits)
            if cache is not None:
                entry = cache.get(key)
                if entry is not None:
                    results[i] = entry
                    continue
            group = pending.get(key)
            if group is None:
                pending[key] = [i]
                representatives.append((key, event))
            else:
                group.append(i)
        if representatives:
            kernel_out = self.backend.match_links_batch(
                self,
                [event.as_tuple() for _key, event in representatives],
                yes_bits,
                maybe_bits,
            )
            self._obs_kernel_calls.inc()
            self._obs_kernel_events.inc(len(representatives))
            for (key, _event), result in zip(representatives, kernel_out):
                if cache is not None:
                    cache.put(key, result)
                for i in pending[key]:
                    results[i] = result
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Digest projection (match-once forwarding)

    def _sub_leaf_map(self) -> Dict[int, int]:
        """The stable ``subscription_id -> live leaf index`` mapping.

        Built by walking the live node graph from the root (``subs_flat``
        alone is unusable: patches orphan superseded leaf slices, whose
        entries must not shadow the live ones) and keyed on
        :attr:`generation`, so every patch or re-annotation rebuilds it
        lazily on next use.
        """
        if self._sub_leaf is not None and self._sub_leaf_generation == self.generation:
            return self._sub_leaf
        mapping: Dict[int, int] = {}
        stack = [0]
        seen = set()
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            if self.event_pos[index] < 0:
                for subscription in self.subs_flat[
                    self.sub_start[index] : self.sub_end[index]
                ]:
                    mapping[subscription.subscription_id] = index
                continue
            table = self.value_tables[index]
            if table is not None:
                stack.extend(table.values())
            stack.extend(
                self.range_children[self.range_start[index] : self.range_end[index]]
            )
            if self.star[index] >= 0:
                stack.append(self.star[index])
        self._sub_leaf = mapping
        self._sub_leaf_generation = self.generation
        return mapping

    def project_links(
        self, subscription_ids: Sequence[int], yes_bits: int, maybe_bits: int
    ) -> Tuple[int, int]:
        """Project a match digest straight onto this program's packed
        leaf-annotation columns: one OR per matched *leaf*.

        Subscriptions sharing a leaf have identical predicates, so a digest
        that names one names them all — deduplicating by leaf and ORing the
        leaf's :attr:`ann_yes` column is exact, and cheaper than a
        per-subscription table when leaves are shared.  Returns
        ``(final_yes_bits, steps)`` where ``steps`` counts the leaf ORs;
        the result equals :meth:`match_links`'s fully refined mask for any
        event whose matched set is exactly ``subscription_ids``.  Raises
        :class:`RoutingError` for unknown ids (diverged subscription sets —
        the caller must fall back to full matching).
        """
        if not self.annotated:
            raise RoutingError("program has no link annotations — call annotate()")
        mapping = self._sub_leaf_map()
        ann_yes = self.ann_yes
        bits = 0
        steps = 0
        seen_leaf = -1
        seen: Optional[set] = None
        for subscription_id in subscription_ids:
            leaf = mapping.get(subscription_id)
            if leaf is None:
                raise RoutingError(
                    f"digest names subscription #{subscription_id}, which this "
                    f"program does not hold — subscription sets have diverged"
                )
            # Digest ids are sorted, and leaf co-residents are inserted
            # adjacently more often than not — a last-leaf fast path plus a
            # lazily allocated seen-set dedupes without hashing every id.
            if leaf == seen_leaf:
                continue
            if seen is None:
                seen = {seen_leaf} if seen_leaf >= 0 else set()
            elif leaf in seen:
                continue
            seen.add(leaf)
            seen_leaf = leaf
            bits |= ann_yes[leaf]
            steps += 1
        return yes_bits | (maybe_bits & bits), steps

    # ------------------------------------------------------------------
    # Incremental recompilation

    def _bump_generation(self) -> None:
        """Advance the record-array generation and drop backend scratch.

        Called after any mutation of the arrays backends execute over
        (:meth:`patch`, :meth:`annotate`): the vector backend rebuilds its
        columnar index lazily, the procpool publisher republishes the
        program into shared memory under the new generation tag.
        """
        self.generation += 1
        if self.backend_state:
            self.backend_state.clear()

    def patch(self, tree: ParallelSearchTree, predicate: Predicate) -> bool:
        """Re-lower the root-to-leaf path selected by ``predicate`` after one
        subscription was inserted into / removed from ``tree``.

        Returns ``False`` (leaving the program untouched is then unsafe —
        the caller must fully recompile) when the tree's root was replaced
        (a re-materializing insert above the old root) or when accumulated
        patch garbage outweighs the live structure.  Otherwise syncs the
        path's edges and leaf slice with the live tree, and recomputes the
        packed annotations of the path bottom-up when annotations are bound.
        """
        if self.index_of_node.get(tree.root.node_id) != 0:
            return False
        # Compare garbage against the *live* structure (total slots minus
        # garbage), not against the total — the total includes the garbage
        # itself, which would let waste grow without ever crossing it.
        if self._waste > max(64, self.node_count - self._waste):
            return False
        tests = [predicate.tests[position] for position in self._positions]
        path: List[Tuple[int, PSTNode]] = []
        node: Optional[PSTNode] = tree.root
        while node is not None:
            index = self._ensure_index(node)
            path.append((index, node))
            if node.is_leaf:
                self._sync_leaf(index, node)
                break
            test = tests[node.attribute_position]
            child = _child_for_test(node, test)
            self._sync_edge(index, node, test, child)
            node = child
        for index, _node in path:
            self._refresh_record(index)
        if self.annotated:
            for index, _node in reversed(path):
                self.ann_yes[index], self.ann_maybe[index] = self._node_annotation(index)
        # A patched program answers differently for the same projection, so
        # both caches must flush.  The discarded residency is charged toward
        # waste: patches that keep evicting a hot cache are costing real work
        # the structural garbage metric cannot see, and should push the
        # program toward a compact full recompile sooner.
        flushed = 0
        if self.match_cache is not None:
            flushed += self.match_cache.flush()
        if self.link_cache is not None:
            flushed += self.link_cache.flush()
        self._waste += flushed >> _CACHE_RESIDENCY_WASTE_SHIFT
        self._bump_generation()
        return True

    def _charge_subtree(self, index: int) -> None:
        """Count every slot under an unreachable node as patch garbage.

        Only called for subtrees the live tree has *pruned* (their PST node
        ids never reappear), so nothing here can be reattached later."""
        queue = [index]
        for node_index in queue:
            self._waste += 1
            self._waste += self.sub_end[node_index] - self.sub_start[node_index]
            table = self.value_tables[node_index]
            if table is not None:
                queue.extend(table.values())
            queue.extend(
                self.range_children[
                    self.range_start[node_index] : self.range_end[node_index]
                ]
            )
            if self.star[node_index] >= 0:
                queue.append(self.star[node_index])

    def _sync_leaf(self, index: int, node: PSTNode) -> None:
        begin, end = self.sub_start[index], self.sub_end[index]
        if self.subs_flat[begin:end] == node.subscriptions:
            return
        self._waste += end - begin
        self._write_leaf_subs(index, node)

    def _sync_edge(
        self,
        index: int,
        node: PSTNode,
        test: AttributeTest,
        child: Optional[PSTNode],
    ) -> None:
        """Make the flat edge for ``test`` at ``node`` agree with the tree."""
        child_index = self._ensure_index(child) if child is not None else -1
        if test.is_dont_care:
            if self.star[index] != child_index:
                if self.star[index] >= 0:
                    if child_index < 0:
                        # The star branch was pruned outright — its whole
                        # compiled subtree is garbage.  (A redirect keeps the
                        # old child reachable through its new parent, so it
                        # is charged only one slot.)
                        self._charge_subtree(self.star[index])
                    else:
                        self._waste += 1
                self.star[index] = child_index
            return
        if isinstance(test, EqualityTest):
            table = self.value_tables[index]
            if child_index < 0:
                if table is not None:
                    value_id = self.value_ids.get(test.value)
                    if value_id is not None:
                        dropped = table.pop(value_id, None)
                        if dropped is not None:
                            self._charge_subtree(dropped)
                    if not table:
                        self.value_tables[index] = None
                return
            if table is None:
                table = {}
                self.value_tables[index] = table
            table[self._intern(test.value)] = child_index
            return
        # Range edge: rebuild the node's CSR slice when it disagrees.
        begin, end = self.range_start[index], self.range_end[index]
        live = node.range_branches
        if len(live) == end - begin and all(
            self.range_tests[begin + k] == live[k][0]
            and self.range_children[begin + k]
            == self.index_of_node.get(live[k][1].node_id)
            for k in range(len(live))
        ):
            return
        self._waste += end - begin
        self._write_range_slice(index, node)

    def __repr__(self) -> str:
        return (
            f"CompiledProgram({self.node_count} nodes, "
            f"{len(self.value_ids)} interned values, "
            f"{len(self.subs_flat)} leaf slots, waste={self._waste}, "
            f"annotated={self.annotated})"
        )


def _child_for_test(node: PSTNode, test: AttributeTest) -> Optional[PSTNode]:
    """The child whose branch label equals ``test`` (the update-path walk)."""
    if test.is_dont_care:
        return node.star_child
    if isinstance(test, EqualityTest):
        return node.value_branches.get(test.value)
    for branch_test, child in node.range_branches:
        if branch_test == test:
            return child
    return None


def compile_tree(
    tree: ParallelSearchTree,
    *,
    cache_capacity: int = DEFAULT_MATCH_CACHE_CAPACITY,
    backend: Union[str, KernelBackend, None] = None,
) -> CompiledProgram:
    """Lower ``tree`` into a fresh :class:`CompiledProgram`.

    ``cache_capacity`` bounds each of the program's two projection caches
    (match and link); pass ``0`` to disable caching entirely.  ``backend``
    selects the kernel execution backend (a
    :data:`~repro.matching.backends.KERNEL_BACKEND_NAMES` name or a
    :class:`~repro.matching.backends.KernelBackend` instance); ``None``
    means :data:`~repro.matching.backends.DEFAULT_BACKEND`.
    """
    return CompiledProgram(tree, cache_capacity=cache_capacity, backend=backend)


def compile_subscriptions(
    schema: EventSchema,
    subscriptions: Sequence[Subscription],
    *,
    attribute_order: Optional[Sequence[str]] = None,
    backend: Union[str, KernelBackend, None] = None,
    cache_capacity: int = 0,
) -> CompiledProgram:
    """Lower a bare subscription list straight into a compiled program.

    The subtree-scoped constructor behind the aggregation layer's compiled
    descent (:mod:`repro.matching.aggregation`): callers holding a set of
    subscriptions but no tree — e.g. one covering root's descendant
    representatives — get the same flat-array lowering and kernel surface
    as a full engine without standing an engine up around it.  Caching
    defaults *off*: these mini-programs sit behind their owner's own
    memoization (the aggregation descent cache), so per-program projection
    caches would only duplicate entries.
    """
    tree = ParallelSearchTree(schema, attribute_order=attribute_order)
    for subscription in subscriptions:
        tree.insert(subscription)
    return CompiledProgram(tree, cache_capacity=cache_capacity, backend=backend)
