"""Content-based matching: schemas, events, predicates, and the Parallel
Search Tree of Section 2 of the paper (plus its optimizations)."""

from repro.matching.base import Matcher
from repro.matching.events import Event
from repro.matching.optimizations import OUT_OF_DOMAIN, DagNode, FactoredMatcher, SearchDag
from repro.matching.ordering import (
    declaration_order,
    dont_care_counts,
    order_by_fewest_dont_cares,
    order_quality,
    reverse_declaration_order,
)
from repro.matching.parser import parse_predicate, tokenize
from repro.matching.predicates import (
    DONT_CARE,
    AttributeTest,
    DontCare,
    EqualityTest,
    IntervalTest,
    Predicate,
    RangeOp,
    RangeTest,
    Subscription,
    normalize_tests,
)
from repro.matching.pst import MatchResult, ParallelSearchTree, PSTNode, build_pst
from repro.matching.subsumption import covers, predicate_subsumes, redundant_subscriptions
from repro.matching.schema import (
    Attribute,
    AttributeType,
    AttributeValue,
    EventSchema,
    InformationSpace,
    stock_trade_schema,
    uniform_schema,
)

__all__ = [
    "Attribute",
    "AttributeTest",
    "AttributeType",
    "AttributeValue",
    "DONT_CARE",
    "DagNode",
    "DontCare",
    "EqualityTest",
    "Event",
    "EventSchema",
    "FactoredMatcher",
    "InformationSpace",
    "IntervalTest",
    "MatchResult",
    "Matcher",
    "OUT_OF_DOMAIN",
    "ParallelSearchTree",
    "PSTNode",
    "Predicate",
    "RangeOp",
    "RangeTest",
    "SearchDag",
    "Subscription",
    "build_pst",
    "covers",
    "declaration_order",
    "dont_care_counts",
    "normalize_tests",
    "order_by_fewest_dont_cares",
    "order_quality",
    "parse_predicate",
    "predicate_subsumes",
    "redundant_subscriptions",
    "reverse_declaration_order",
    "stock_trade_schema",
    "tokenize",
    "uniform_schema",
]
