"""Content-based matching: schemas, events, predicates, and the Parallel
Search Tree of Section 2 of the paper (plus its optimizations)."""

from repro.matching.base import Matcher, MatcherEngine
from repro.matching.compile import CompiledProgram, compile_tree
from repro.matching.events import Event
from repro.matching.optimizations import OUT_OF_DOMAIN, DagNode, FactoredMatcher, SearchDag
from repro.matching.ordering import (
    declaration_order,
    dont_care_counts,
    order_by_fewest_dont_cares,
    order_quality,
    reverse_declaration_order,
)
from repro.matching.parser import parse_predicate, tokenize
from repro.matching.predicates import (
    DONT_CARE,
    AttributeTest,
    DontCare,
    EqualityTest,
    IntervalTest,
    Predicate,
    RangeOp,
    RangeTest,
    Subscription,
    normalize_tests,
)
from repro.matching.pst import MatchResult, ParallelSearchTree, PSTNode, build_pst
from repro.matching.subsumption import covers, predicate_subsumes, redundant_subscriptions
from repro.matching.schema import (
    Attribute,
    AttributeType,
    AttributeValue,
    EventSchema,
    InformationSpace,
    stock_trade_schema,
    uniform_schema,
)

# The engine implementations live in repro.matching.engines, which depends on
# repro.core (annotations, link matching).  Importing them eagerly here would
# create an import cycle (repro.core.annotation imports repro.matching.pst,
# which initializes this package), so they are exposed lazily instead.
_ENGINE_EXPORTS = (
    "CompiledEngine",
    "DEFAULT_ENGINE",
    "ENGINE_NAMES",
    "TreeEngine",
    "create_engine",
)


def __getattr__(name: str):
    if name in _ENGINE_EXPORTS:
        from repro.matching import engines

        return getattr(engines, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Attribute",
    "AttributeTest",
    "AttributeType",
    "AttributeValue",
    "CompiledEngine",
    "CompiledProgram",
    "DEFAULT_ENGINE",
    "DONT_CARE",
    "DagNode",
    "DontCare",
    "ENGINE_NAMES",
    "EqualityTest",
    "Event",
    "EventSchema",
    "FactoredMatcher",
    "InformationSpace",
    "IntervalTest",
    "MatchResult",
    "Matcher",
    "MatcherEngine",
    "OUT_OF_DOMAIN",
    "TreeEngine",
    "compile_tree",
    "create_engine",
    "ParallelSearchTree",
    "PSTNode",
    "Predicate",
    "RangeOp",
    "RangeTest",
    "SearchDag",
    "Subscription",
    "build_pst",
    "covers",
    "declaration_order",
    "dont_care_counts",
    "normalize_tests",
    "order_by_fewest_dont_cares",
    "order_quality",
    "parse_predicate",
    "predicate_subsumes",
    "redundant_subscriptions",
    "reverse_declaration_order",
    "stock_trade_schema",
    "tokenize",
    "uniform_schema",
]
