"""Attribute-inverted index over canonical predicates for covering search.

The covering forest of :mod:`repro.matching.aggregation` needs two queries
per attached group: *who covers this predicate* (to descend from a covering
root) and *whom does this predicate cover* (to demote siblings under the
newcomer).  Both were bounded linear scans over forest levels — fine at a
few thousand groups, the ingest bottleneck at hundreds of thousands.  This
module answers both queries with **candidate filtering**: an inverted index
over the per-attribute tests of every live canonical predicate hands back a
small superset of the true relations, and only those candidates are checked
with :func:`~repro.matching.subsumption.predicate_subsumes`.

Canonical predicates (see
:func:`~repro.matching.aggregation.canonicalize_predicate`) carry only
three test shapes per attribute — equality, closed-bound interval, or
don't-care — which is what makes the index small:

* ``equality buckets`` — ``position -> value -> keys`` for every equality
  test.  Values hash by Python equality, so the ``1``/``1.0`` collapse
  matches the subsumption algebra's.
* ``interval lists`` — ``position -> {key: test}`` for every non-equality
  test, scanned with :func:`~repro.matching.subsumption.covers` containment
  per position (the lists hold only genuinely range-constrained predicates,
  which Zipf-equality workloads make rare).
* ``equality signatures`` — ``frozenset((position, value), ...) -> keys``
  for predicates constrained *only* by equalities.  A pure-equality
  predicate covers a probe iff its signature is a subset of the probe's
  equality pairs with equal values, so cover lookup is subset enumeration
  over the probe's pairs: ``2**k`` dict probes instead of a scan of every
  group (bounded by :data:`MAX_SIGNATURE_BITS`).

The filter is **complete** for the one-sided-range + equality workload the
aggregation layer sees (every true covering relation is in the candidate
set), with two documented best-effort gaps that cost compression, never
correctness: probes with more than :data:`MAX_SIGNATURE_BITS` equality
tests enumerate subsets of the first :data:`MAX_SIGNATURE_BITS` pairs only,
and a pure-equality predicate covering an interval pinned to a single point
is not surfaced.  Spurious candidates are harmless by construction — the
caller verifies every candidate with ``predicate_subsumes`` before acting.

Maintenance is strictly incremental: :meth:`CoveringIndex.add` /
:meth:`CoveringIndex.remove` on group creation and dissolution, nothing on
forest promotions or demotions (the index stores no forest shape — callers
filter candidates by the live ``parent`` pointer).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Hashable, List, Optional, Tuple

from repro.matching.predicates import AttributeTest, EqualityTest, Predicate
from repro.matching.schema import AttributeValue
from repro.matching.subsumption import covers

#: Cover probes enumerate equality-pair subsets of at most the probe's first
#: MAX_SIGNATURE_BITS pairs (``2**MAX_SIGNATURE_BITS`` subsets worst case;
#: in practice far fewer — only subset *sizes* with live signatures are
#: enumerated).  Covers keyed on the dropped pairs are missed — compression
#: loss, never a wrong answer.
MAX_SIGNATURE_BITS = 12

#: One predicate's constrained tests: ``((position, test), ...)``.
_Constrained = Tuple[Tuple[int, AttributeTest], ...]

#: An equality signature: the ``(position, value)`` pairs of a pure-equality
#: predicate, in ascending position order (tuples hash cheaper than
#: frozensets, and position order makes equal pair sets equal tuples).
_Signature = Tuple[Tuple[int, AttributeValue], ...]


def _constrained_tests(canonical: Predicate) -> _Constrained:
    return tuple(
        (position, test)
        for position, test in enumerate(canonical.tests)
        if not test.is_dont_care
    )


class CoveringIndex:
    """Incremental inverted index from canonical predicates to cover/covered
    candidates.

    Keys are opaque hashable objects (the aggregation layer uses its
    ``_Group`` instances); each key is bound to one canonical predicate for
    its whole lifetime in the index.  Group sets are kept as insertion-
    ordered ``dict``-of-``None`` so candidate order — and therefore forest
    shape — is deterministic for a given ingest order.
    """

    __slots__ = (
        "_entries",
        "_equalities",
        "_intervals",
        "_signatures",
        "_signature_sizes",
        "_universal",
    )

    def __init__(self) -> None:
        #: key -> its constrained tests (membership + constraint count).
        self._entries: Dict[Hashable, _Constrained] = {}
        #: position -> value -> ordered set of keys with that equality test.
        self._equalities: Dict[int, Dict[AttributeValue, Dict[Hashable, None]]] = {}
        #: position -> key -> its (non-equality) test at that position.
        self._intervals: Dict[int, Dict[Hashable, AttributeTest]] = {}
        #: equality signature -> ordered set of pure-equality keys.
        self._signatures: Dict[_Signature, Dict[Hashable, None]] = {}
        #: signature length -> live signature count; cover probes enumerate
        #: pair subsets only for sizes present here.
        self._signature_sizes: Dict[int, int] = {}
        #: keys whose predicate constrains nothing (cover everything).
        self._universal: Dict[Hashable, None] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    @staticmethod
    def _signature_of(constrained: _Constrained) -> Optional[_Signature]:
        """The equality signature, or None when any test is non-equality."""
        pairs = []
        for position, test in constrained:
            if not isinstance(test, EqualityTest):
                return None
            pairs.append((position, test.value))
        return tuple(pairs)

    def add(self, key: Hashable, canonical: Predicate) -> None:
        """Index ``key`` under its canonical predicate's per-attribute tests."""
        constrained = _constrained_tests(canonical)
        self._entries[key] = constrained
        if not constrained:
            self._universal[key] = None
            return
        for position, test in constrained:
            if isinstance(test, EqualityTest):
                bucket = self._equalities.setdefault(position, {})
                bucket.setdefault(test.value, {})[key] = None
            else:
                self._intervals.setdefault(position, {})[key] = test
        signature = self._signature_of(constrained)
        if signature is not None:
            keys = self._signatures.setdefault(signature, {})
            if not keys:
                size = len(signature)
                self._signature_sizes[size] = self._signature_sizes.get(size, 0) + 1
            keys[key] = None

    def remove(self, key: Hashable) -> None:
        """Drop ``key`` from every posting list it appears in."""
        constrained = self._entries.pop(key)
        if not constrained:
            del self._universal[key]
            return
        for position, test in constrained:
            if isinstance(test, EqualityTest):
                bucket = self._equalities[position]
                keys = bucket[test.value]
                del keys[key]
                if not keys:
                    del bucket[test.value]
                if not bucket:
                    del self._equalities[position]
            else:
                keys = self._intervals[position]
                del keys[key]
                if not keys:
                    del self._intervals[position]
        signature = self._signature_of(constrained)
        if signature is not None:
            keys = self._signatures[signature]
            del keys[key]
            if not keys:
                del self._signatures[signature]
                size = len(signature)
                count = self._signature_sizes[size] - 1
                if count:
                    self._signature_sizes[size] = count
                else:
                    del self._signature_sizes[size]

    # ------------------------------------------------------------------
    # Queries

    def cover_candidates(self, canonical: Predicate) -> List[Hashable]:
        """Keys whose predicate may cover ``canonical`` (superset filter).

        Universal predicates cover everything; pure-equality covers come
        from signature-subset enumeration; interval-bearing covers must
        place an interval at some probe-constrained position that contains
        the probe's test there, so per-position containment scans of the
        interval lists find them.  The probe's own key (if indexed) is a
        candidate of itself — callers skip it.
        """
        found: Dict[Hashable, None] = dict(self._universal)
        constrained = _constrained_tests(canonical)
        if self._signatures:
            pairs = tuple(
                (position, test.value)
                for position, test in constrained
                if isinstance(test, EqualityTest)
            )[:MAX_SIGNATURE_BITS]
            get = self._signatures.get
            for size in self._signature_sizes:
                if size > len(pairs):
                    continue
                # combinations preserves input order, so every subset comes
                # out in ascending position order — the signature key form.
                for subset in combinations(pairs, size):
                    hit = get(subset)
                    if hit:
                        found.update(hit)
        for position, test in constrained:
            entries = self._intervals.get(position)
            if not entries:
                continue
            for key, candidate_test in entries.items():
                if key not in found and covers(candidate_test, test):
                    found[key] = None
        return list(found)

    def covered_candidates(
        self, canonical: Predicate, limit: Optional[int] = None
    ) -> Optional[List[Hashable]]:
        """Keys whose predicate ``canonical`` may cover, or ``None`` when
        every key is a candidate (the probe constrains nothing, so it covers
        all of them — callers fall back to their own bounded sibling scan).

        Seeds from the probe's cheapest constrained position: anything the
        probe covers is constrained there by a test the probe's test
        contains, so one position's equality buckets plus its interval list
        are a complete candidate source.  Candidates constrained on fewer
        attributes than the probe are pruned outright (a covered predicate
        carries every constraint of its cover).

        ``limit`` caps the candidates collected (insertion order — the
        caller's verification budget makes collecting more pointless);
        demotion is opportunistic, so a truncated candidate set costs
        compression, never correctness.
        """
        constrained = _constrained_tests(canonical)
        if not constrained:
            return None
        if limit is not None and limit <= 0:
            return []
        best = None
        for position, test in constrained:
            intervals = self._intervals.get(position, {})
            by_value = self._equalities.get(position, {})
            if isinstance(test, EqualityTest):
                buckets = [by_value.get(test.value, {})]
            else:
                buckets = [
                    keys for value, keys in by_value.items() if test.evaluate(value)
                ]
            load = len(intervals) + sum(len(bucket) for bucket in buckets)
            if best is None or load < best[0]:
                best = (load, test, buckets, intervals)
        _, seed_test, buckets, intervals = best
        min_constraints = len(constrained)
        entries = self._entries
        found: Dict[Hashable, None] = {}
        for bucket in buckets:
            for key in bucket:
                if len(entries[key]) >= min_constraints:
                    found[key] = None
                    if limit is not None and len(found) >= limit:
                        return list(found)
        for key, candidate_test in intervals.items():
            if (
                key not in found
                and len(entries[key]) >= min_constraints
                and covers(seed_test, candidate_test)
            ):
                found[key] = None
                if limit is not None and len(found) >= limit:
                    break
        return list(found)

    def __repr__(self) -> str:
        return (
            f"CoveringIndex({len(self._entries)} predicates, "
            f"{len(self._signatures)} equality signatures, "
            f"{sum(len(v) for v in self._intervals.values())} interval postings)"
        )
