"""Online subscription aggregation: covering forest + compressed compilation.

At 10^6+ subscriptions the bottleneck of the compiled matcher shifts from
walking the program to the program's *size*: the record arrays grow with the
number of subscribers even though real workloads register the same few
predicate bodies over and over (Zipf-skewed interests).  This module shrinks
the subscription set *before* compilation, SIENA-style, with two mechanisms
layered between ingest and the compiled/sharded engines:

**Canonical deduplication.**  Every incoming predicate is canonicalized with
the exact per-attribute containment algebra of
:mod:`repro.matching.subsumption` — strict integer bounds close
(``x < 4`` ≡ ``x <= 3``) and one-sided ranges normalize to intervals — so
predicates that accept the same events hash identically.  Subscriptions with
an identical canonical body join one *group* carrying a subscriber set; only
the group's **representative** subscription enters the inner engine, so the
``CompiledProgram`` record arrays grow with *distinct* predicates, not
subscribers.

**Incremental covering forest.**  Groups are linked into a forest by the
covering relation (:func:`~repro.matching.subsumption.predicate_subsumes`):
a group whose predicate is covered by another hangs *under* it and is not
compiled at all — only forest roots have representatives in the inner
engine.  Insert and remove are incremental: a new group descends from the
covering root (demoting any siblings it covers), and removing the last
member of a covering parent promotes its children back to compiled roots.
No rebuild, ever.  The cover search is bounded
(:data:`DEFAULT_COVER_SCAN_LIMIT`): past the limit new groups simply become
roots — covering is a best-effort *compressor*, so missing a relation costs
compression, never correctness.

**Engine-boundary expansion.**  The inner engine matches over deduplicated
leaves; expansion back to subscriber sets happens here:

* :meth:`AggregatingEngine.match` — matched representatives expand to their
  group's members, then the forest descends into covered children, pruning
  whole subtrees whose predicate rejects the event.  Steps are the inner
  engine's (attributed to the covering leaf) plus one per child group
  evaluated during descent.
* :meth:`AggregatingEngine.match_links` — the inner refinement runs over
  the deduplicated leaves: each representative's leaf annotation is the
  *union* of its members' link bits (the multi-position
  ``LinkOfSubscriber`` contract of
  :meth:`~repro.matching.compile.CompiledProgram.annotate`), so for forests
  without covered children (pure deduplication) the inner mask is already
  exact.  Covered descendants contribute their members' links through a
  forest descent, intersected with the initialization mask's Maybe bits —
  final masks are bit-for-bit the unaggregated engine's.

Membership changes that leave the tree untouched (a dedup hit, removing one
of several members) refresh the leaf annotation through the engines'
``refresh_links`` path — a path re-annotation plus surgical cache repair,
not a rebuild.  Everything downstream — trit annotations,
:class:`~repro.matching.compile.ProjectionCache`, surgical shard-cache
repair, batching, and all three kernel backends — runs unchanged over the
compressed program.

Observability: ``match.aggregation.compression_ratio`` (subscriptions per
compiled leaf), ``match.aggregation.forest_nodes`` (live groups), and
``match.aggregation.dedup_hits`` (inserts absorbed without touching the
inner engine).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SubscriptionError
from repro.core.annotation import LinkOfSubscriber
from repro.core.link_matcher import LinkMatchResult
from repro.core.trits import TritVector, pack_tritvector, unpack_tritvector
from repro.matching.base import MatcherEngine
from repro.matching.compile import ProjectionCache
from repro.matching.events import Event
from repro.matching.predicates import Predicate, RangeTest, Subscription
from repro.matching.pst import MatchResult
from repro.matching.subsumption import (
    _as_interval,
    _canonicalize_integer_bounds,
    predicate_subsumes,
)
from repro.obs import get_registry

#: Cover searches scan at most this many sibling groups per level.  Past the
#: limit a new group becomes a root without looking for (or demoting) covers
#: — deduplication stays O(1) and exact, covering compression degrades
#: gracefully.  Correctness never depends on the forest shape.
DEFAULT_COVER_SCAN_LIMIT = 512

#: Entries in the descent cache (event values -> matching groups).  Flushed
#: wholesale on every churn op, mirroring the inner engine's cache policy.
DESCENT_CACHE_CAPACITY = 4096

#: Subscriber identity of the sentinel representatives registered with the
#: inner engine.  Representatives never reach users: matching expands them
#: to members, ``subscriptions`` lists members only.
REPRESENTATIVE_SUBSCRIBER = "<aggregate>"

def canonicalize_predicate(predicate: Predicate) -> Predicate:
    """The canonical form under which identical-acceptance predicates unify.

    Per attribute: strict integer bounds close
    (:func:`~repro.matching.subsumption._canonicalize_integer_bounds`), then
    one-sided range tests normalize to intervals
    (:func:`~repro.matching.subsumption._as_interval`) — so ``x < 4`` and
    ``x <= 3`` over an INTEGER attribute produce the *same* test object
    value, and :class:`~repro.matching.predicates.Predicate` hashing makes
    the group lookup a dict probe.  Equality tests and don't-cares are
    already canonical.  The canonical predicate accepts exactly the same
    events as the original.
    """
    tests = {}
    changed = False
    for attribute, test in zip(predicate.schema.attributes, predicate.tests):
        if test.is_dont_care:
            continue
        canonical = _canonicalize_integer_bounds(attribute, test)
        if isinstance(canonical, RangeTest):
            interval = _as_interval(canonical)
            if interval is not None:
                canonical = interval
        if canonical is not test:
            changed = True
        tests[attribute.name] = canonical
    if not changed:
        return predicate
    return Predicate(predicate.schema, tests)


class _Group:
    """One distinct canonical predicate: its members and forest links.

    ``representative`` is the sentinel subscription registered with the
    inner engine *while the group is a root*; covered (non-root) groups are
    not compiled at all and are reached by forest descent.
    """

    __slots__ = ("canonical", "representative", "members", "children", "parent")

    def __init__(self, canonical: Predicate, subscription: Subscription) -> None:
        self.canonical = canonical
        self.representative = Subscription(
            canonical,
            REPRESENTATIVE_SUBSCRIBER,
            # Representatives draw from the global id counter like any other
            # subscription (ids must be unique within the inner engine).
        )
        self.members: Dict[int, Subscription] = {
            subscription.subscription_id: subscription
        }
        self.children: List["_Group"] = []
        self.parent: Optional["_Group"] = None

    def __repr__(self) -> str:
        return (
            f"_Group({self.canonical.describe()!r}, {len(self.members)} members, "
            f"{len(self.children)} children, root={self.parent is None})"
        )


class AggregatingEngine(MatcherEngine):
    """Covering-forest aggregation in front of a compiled or sharded engine.

    Exposes the full :class:`~repro.matching.base.MatcherEngine` surface;
    match sets, brute-force sets, and refined link masks are exactly the
    wrapped engine's *without* aggregation (the property suite in
    ``tests/property/test_prop_aggregation.py`` pins this down).  Step
    counts are attributed to the deduplicated leaves: the inner engine's
    count plus one step per covered group evaluated during forest descent.

    Construct directly around an engine instance, or through
    :func:`~repro.matching.engines.create_engine` with ``aggregate=True``.
    """

    name = "aggregating"

    def __init__(
        self, inner: MatcherEngine, *, cover_scan_limit: int = DEFAULT_COVER_SCAN_LIMIT
    ) -> None:
        if not hasattr(inner, "refresh_links"):
            raise SubscriptionError(
                f"engine {inner.name!r} cannot refresh leaf link annotations "
                "in place — aggregation requires the compiled or sharded engine"
            )
        self.inner = inner
        self.schema = inner.schema
        self.cover_scan_limit = cover_scan_limit
        #: canonical predicate -> group, for every live group.
        self._groups: Dict[Predicate, _Group] = {}
        #: canonical predicate -> group, roots only (insertion-ordered).
        self._roots: Dict[Predicate, _Group] = {}
        #: member subscription_id -> owning group.
        self._group_of: Dict[int, _Group] = {}
        #: representative subscription_id -> group (roots only).
        self._rep_group: Dict[int, _Group] = {}
        self._num_links: Optional[int] = None
        self._link_of: Optional[LinkOfSubscriber] = None
        self._descent_cache = ProjectionCache(
            DESCENT_CACHE_CAPACITY, kind="aggregation"
        )
        self.dedup_hits = 0
        registry = get_registry()
        self._obs_dedup = registry.counter("match.aggregation.dedup_hits")
        self._obs_forest_nodes = registry.gauge("match.aggregation.forest_nodes")
        self._obs_compression = registry.gauge("match.aggregation.compression_ratio")

    # ------------------------------------------------------------------
    # Introspection

    @property
    def subscriptions(self) -> List[Subscription]:
        """The registered *member* subscriptions (representatives excluded)."""
        return [
            member
            for group in self._groups.values()
            for member in group.members.values()
        ]

    @property
    def subscription_count(self) -> int:
        return len(self._group_of)

    @property
    def forest_nodes(self) -> int:
        """Live groups (distinct canonical predicates)."""
        return len(self._groups)

    @property
    def root_count(self) -> int:
        """Groups compiled into the inner engine (distinct leaves)."""
        return len(self._roots)

    @property
    def compression_ratio(self) -> float:
        """Registered subscriptions per compiled leaf (>= 1.0)."""
        return len(self._group_of) / max(1, len(self._roots))

    def group_of(self, subscription_id: int) -> Tuple[Predicate, int, bool]:
        """(canonical predicate, member count, is_root) for a registration —
        introspection for tests and diagnostics."""
        group = self._group_of.get(subscription_id)
        if group is None:
            raise SubscriptionError(f"unknown subscription id {subscription_id}")
        return group.canonical, len(group.members), group.parent is None

    def match_brute_force(self, event: Event) -> List[Subscription]:
        """Reference semantics: evaluate every member predicate directly."""
        return [
            member
            for group in self._groups.values()
            for member in group.members.values()
            if member.predicate.matches(event)
        ]

    # ------------------------------------------------------------------
    # Churn (incremental — no forest rebuild)

    def insert(self, subscription: Subscription) -> None:
        subscription_id = subscription.subscription_id
        if subscription_id in self._group_of:
            raise SubscriptionError(
                f"subscription #{subscription_id} is already registered"
            )
        if not subscription.predicate.is_satisfiable:
            # Mirror the tree's refusal exactly — aggregation must not
            # silently absorb what the unaggregated engine rejects.
            raise SubscriptionError(
                f"refusing to register unsatisfiable predicate "
                f"{subscription.predicate.describe()!r}"
            )
        canonical = canonicalize_predicate(subscription.predicate)
        group = self._groups.get(canonical)
        if group is not None:
            # Dedup hit: the compiled arrays do not move at all.
            group.members[subscription_id] = subscription
            self._group_of[subscription_id] = group
            self.dedup_hits += 1
            self._obs_dedup.inc()
            self._membership_changed(group)
        else:
            group = _Group(canonical, subscription)
            self._groups[canonical] = group
            self._group_of[subscription_id] = group
            self._attach(group)
        self._update_gauges()

    def remove(self, subscription_id: int) -> Subscription:
        group = self._group_of.pop(subscription_id, None)
        if group is None:
            raise SubscriptionError(f"unknown subscription id {subscription_id}")
        subscription = group.members.pop(subscription_id)
        if group.members:
            # The group survives; only its link union may have shrunk.
            self._membership_changed(group)
        else:
            self._dissolve(group)
        self._update_gauges()
        return subscription

    def _attach(self, group: _Group) -> None:
        """Place a fresh group in the forest: descend from a covering root,
        demote any siblings the new predicate covers, and register the
        representative with the inner engine iff the group lands at a root."""
        parent: Optional[_Group] = None
        siblings = self._roots
        while True:
            cover = self._covering_in(siblings.values() if parent is None else siblings, group)
            if cover is None:
                break
            parent = cover
            siblings = parent.children
        demoted = self._covered_in(
            siblings.values() if parent is None else siblings, group
        )
        for sibling in demoted:
            if parent is None:
                del self._roots[sibling.canonical]
                self.inner.remove(sibling.representative.subscription_id)
                del self._rep_group[sibling.representative.subscription_id]
            else:
                parent.children.remove(sibling)
            sibling.parent = group
            group.children.append(sibling)
        group.parent = parent
        if parent is None:
            self._roots[group.canonical] = group
            self._register_root(group)
        else:
            parent.children.append(group)

    def _covering_in(self, groups, group: _Group) -> Optional[_Group]:
        """A group among ``groups`` that covers ``group`` (bounded scan)."""
        canonical = group.canonical
        for scanned, candidate in enumerate(groups):
            if scanned >= self.cover_scan_limit:
                return None
            if candidate is group:
                continue
            if predicate_subsumes(candidate.canonical, canonical):
                return candidate
        return None

    def _covered_in(self, groups, group: _Group) -> List[_Group]:
        """Groups among ``groups`` that ``group`` covers (bounded scan)."""
        canonical = group.canonical
        covered: List[_Group] = []
        for scanned, candidate in enumerate(groups):
            if scanned >= self.cover_scan_limit:
                break
            if candidate is group:
                continue
            if predicate_subsumes(canonical, candidate.canonical):
                covered.append(candidate)
        return covered

    def _register_root(self, group: _Group) -> None:
        self._rep_group[group.representative.subscription_id] = group
        self.inner.insert(group.representative)

    def _dissolve(self, group: _Group) -> None:
        """Remove an emptied group, promoting or reparenting its children."""
        del self._groups[group.canonical]
        parent = group.parent
        if parent is None:
            del self._roots[group.canonical]
            self.inner.remove(group.representative.subscription_id)
            del self._rep_group[group.representative.subscription_id]
            # Children lose their covering parent: each becomes a root and
            # compiles its own representative (its subtree stays intact —
            # covering within the subtree still holds).
            for child in group.children:
                child.parent = None
                self._roots[child.canonical] = child
                self._register_root(child)
        else:
            # A covered group's children are covered by the grandparent too
            # (covering is transitive), so they reattach one level up.
            parent.children.remove(group)
            for child in group.children:
                child.parent = parent
                parent.children.append(child)
        group.children = []

    def _membership_changed(self, group: _Group) -> None:
        """After a membership-only change: refresh the compiled leaf's link
        union in place.  Only roots have compiled leaves, and only bound
        links have annotations to go stale."""
        if group.parent is not None or self._link_of is None:
            return
        self.inner.refresh_links(group.representative)

    def _update_gauges(self) -> None:
        # Every churn op lands here; cached descents may reference removed
        # groups or miss new ones, so the whole cache goes (the inner
        # engine's caches apply the same wholesale policy on its churn).
        self._descent_cache.flush()
        self._obs_forest_nodes.set(len(self._groups))
        self._obs_compression.set(self.compression_ratio)

    def invalidate(self) -> None:
        """Drop the inner engine's compiled form (forest state is exact and
        survives; the next match recompiles the deduplicated leaves)."""
        self._descent_cache.flush()
        self.inner.invalidate()

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "AggregatingEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Matching (expansion at the engine boundary)

    def _descend(self, event: Event, inner_result: Optional[MatchResult] = None):
        """The matching *groups* for an event: the inner engine's matched
        roots plus every covered descendant whose canonical predicate
        accepts the event (one step per descendant evaluated; a rejecting
        descendant prunes its whole subtree).

        Served from a projection-keyed LRU (flushed on every churn op, like
        the inner engine's own caches): covering descent re-evaluates
        predicates, so on warm Zipf event streams the cache is what keeps
        the aggregated engine's per-event cost at the deduplicated leaves'
        level.  Returns a mutable entry
        ``[groups, inner_steps, descent_steps, members_memo, bits_memo]`` —
        the memo slots start ``None`` and are filled lazily by
        :meth:`_expand` / :meth:`_descendant_link_bits`.  Memoizing on the
        entry is safe because every churn op flushes the cache, so group
        membership is frozen for an entry's lifetime.
        """
        key = event.as_tuple()
        cached = self._descent_cache.get(key)
        if cached is not None:
            return cached
        if inner_result is None:
            inner_result = self.inner.match(event)
        groups: List[_Group] = []
        steps = 0
        stack: List[_Group] = []
        for representative in inner_result.subscriptions:
            group = self._rep_group.get(representative.subscription_id)
            if group is None:
                raise SubscriptionError(
                    f"inner engine returned non-representative {representative!r}"
                )
            groups.append(group)
            stack.extend(group.children)
        while stack:
            child = stack.pop()
            steps += 1
            if child.canonical.matches(event):
                groups.append(child)
                stack.extend(child.children)
        entry = [groups, inner_result.steps, steps, None, None]
        self._descent_cache.put(key, entry)
        return entry

    @staticmethod
    def _expand(entry) -> List[Subscription]:
        """The entry's groups expanded to members, memoized on the entry so
        a warm cache hit costs one probe, not a rebuild of the match set."""
        matched = entry[3]
        if matched is None:
            matched = []
            for group in entry[0]:
                matched.extend(group.members.values())
            entry[3] = matched
        return matched

    def match(self, event: Event) -> MatchResult:
        entry = self._descend(event)
        return MatchResult(self._expand(entry), entry[1] + entry[2])

    def match_batch(self, events: Sequence[Event]) -> List[MatchResult]:
        inner_results = self.inner.match_batch(events)
        results: List[MatchResult] = []
        for event, result in zip(events, inner_results):
            entry = self._descend(event, result)
            results.append(MatchResult(self._expand(entry), entry[1] + entry[2]))
        return results

    # ------------------------------------------------------------------
    # Link matching (masks over the deduplicated leaves)

    def bind_links(self, num_links: int, link_of_subscriber: LinkOfSubscriber) -> None:
        self._num_links = num_links
        self._link_of = link_of_subscriber
        # Cached entries may carry link bits memoized under the old binding.
        self._descent_cache.flush()
        self.inner.bind_links(num_links, self._links_of_representative)

    def _links_of_representative(
        self, representative: Subscription
    ) -> Union[int, Tuple[int, ...]]:
        """The multi-position ``LinkOfSubscriber`` handed to the inner
        engine: a deduplicated leaf lights the union of its members' links
        (unreachable members contribute nothing)."""
        group = self._rep_group.get(representative.subscription_id)
        if group is None or self._link_of is None:
            return -1
        positions = set()
        for member in group.members.values():
            position = self._link_of(member)
            if position >= 0:
                positions.add(position)
        return tuple(sorted(positions))

    def _descendant_link_bits(self, event: Event) -> Tuple[int, int]:
        """Link bits owed by *covered* groups whose predicate matches the
        event (roots' bits already live in the compiled leaf annotations).
        Rides the cached descent and memoizes on its entry — both the inner
        match and the forest walk are projection-cache-served on warm
        streams.  Returns ``(link_bits, descent_steps)``."""
        assert self._link_of is not None
        entry = self._descend(event)
        bits = entry[4]
        if bits is None:
            bits = 0
            for group in entry[0]:
                if group.parent is None:
                    continue
                for member in group.members.values():
                    position = self._link_of(member)
                    if position >= 0:
                        bits |= 1 << position
            entry[4] = bits
        return bits, entry[2]

    def match_links(
        self, event: Event, initialization_mask: TritVector
    ) -> LinkMatchResult:
        result = self.inner.match_links(event, initialization_mask)
        if len(self._groups) == len(self._roots):
            # Pure deduplication (no covered groups): the inner refinement
            # over the deduplicated leaves is already exact.
            return result
        assert self._num_links is not None
        _yes_bits, maybe_bits = pack_tritvector(initialization_mask)
        extra_bits, descent_steps = self._descendant_link_bits(event)
        final_yes, _ = pack_tritvector(result.mask)
        merged = final_yes | (extra_bits & maybe_bits)
        return LinkMatchResult(
            unpack_tritvector(merged, 0, self._num_links),
            result.steps + descent_steps,
        )

    def match_links_batch(
        self, events: Sequence[Event], initialization_mask: TritVector
    ) -> List[LinkMatchResult]:
        results = self.inner.match_links_batch(events, initialization_mask)
        if len(self._groups) == len(self._roots):
            return results
        assert self._num_links is not None
        _yes_bits, maybe_bits = pack_tritvector(initialization_mask)
        merged: List[LinkMatchResult] = []
        for event, result in zip(events, results):
            extra_bits, descent_steps = self._descendant_link_bits(event)
            final_yes, _ = pack_tritvector(result.mask)
            merged_yes = final_yes | (extra_bits & maybe_bits)
            merged.append(
                LinkMatchResult(
                    unpack_tritvector(merged_yes, 0, self._num_links),
                    result.steps + descent_steps,
                )
            )
        return merged

    def __repr__(self) -> str:
        return (
            f"AggregatingEngine({len(self._group_of)} subscriptions -> "
            f"{len(self._roots)} compiled leaves, {len(self._groups)} groups, "
            f"inner={self.inner!r})"
        )
