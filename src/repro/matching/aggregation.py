"""Online subscription aggregation: covering forest + compressed compilation.

At 10^6+ subscriptions the bottleneck of the compiled matcher shifts from
walking the program to the program's *size*: the record arrays grow with the
number of subscribers even though real workloads register the same few
predicate bodies over and over (Zipf-skewed interests).  This module shrinks
the subscription set *before* compilation, SIENA-style, with two mechanisms
layered between ingest and the compiled/sharded engines:

**Canonical deduplication.**  Every incoming predicate is canonicalized with
the exact per-attribute containment algebra of
:mod:`repro.matching.subsumption` — strict integer bounds close
(``x < 4`` ≡ ``x <= 3``) and one-sided ranges normalize to intervals — so
predicates that accept the same events hash identically.  Subscriptions with
an identical canonical body join one *group* carrying a subscriber set; only
the group's **representative** subscription enters the inner engine, so the
``CompiledProgram`` record arrays grow with *distinct* predicates, not
subscribers.

**Incremental covering forest.**  Groups are linked into a forest by the
covering relation (:func:`~repro.matching.subsumption.predicate_subsumes`):
a group whose predicate is covered by another hangs *under* it and is not
compiled at all — only forest roots have representatives in the inner
engine.  Insert and remove are incremental: a new group descends from the
covering root (demoting any siblings it covers), and removing the last
member of a covering parent promotes its children back to compiled roots.
No rebuild, ever.  Cover relations are found through an attribute-inverted
index (:class:`~repro.matching.covering_index.CoveringIndex`): candidate
predicates come from per-attribute posting lists and only candidates are
verified with ``predicate_subsumes``, so ingest cost tracks the handful of
predicates that *could* be related instead of the whole forest level.
Verification is still bounded (:data:`DEFAULT_COVER_SCAN_LIMIT`): past the
limit new groups simply become roots — covering is a best-effort
*compressor*, so missing a relation costs compression, never correctness.
``use_index=False`` restores the bounded linear sibling scans (the
benchmark baseline).

**Compiled descent.**  Forest descent below a matched root interprets
``canonical.matches`` per child — cheap for shallow bushes, measurable for
hot roots with big subtrees.  Roots whose subtrees keep being walked on
descent-cache misses (:data:`DEFAULT_SUBTREE_COMPILE_THRESHOLD` misses, at
least :data:`DEFAULT_SUBTREE_MIN_SIZE` descendants) get their descendants
lowered into a per-subtree mini-program via
:func:`~repro.matching.compile.compile_subscriptions` — the same flat-array
kernels (and vector backend) as top-level matching.  A flat match over all
descendants returns exactly the interpreted pruned walk's groups: covering
is transitive, so every descendant whose predicate accepts the event is
reachable from the root.  Programs are invalidated on any structural churn
of their subtree (attach, demotion, dissolve) and rebuilt only after the
hit counter warms up again; membership-only churn leaves them alone.

**Engine-boundary expansion.**  The inner engine matches over deduplicated
leaves; expansion back to subscriber sets happens here:

* :meth:`AggregatingEngine.match` — matched representatives expand to their
  group's members, then the forest descends into covered children, pruning
  whole subtrees whose predicate rejects the event.  Steps are the inner
  engine's (attributed to the covering leaf) plus one per child group
  evaluated during descent (a compiled subtree contributes its program's
  step count).
* :meth:`AggregatingEngine.match_links` — the inner refinement runs over
  the deduplicated leaves: each representative's leaf annotation is the
  *union* of its members' link bits (the multi-position
  ``LinkOfSubscriber`` contract of
  :meth:`~repro.matching.compile.CompiledProgram.annotate`), so for forests
  without covered children (pure deduplication) the inner mask is already
  exact.  Covered descendants contribute their members' links through a
  forest descent, intersected with the initialization mask's Maybe bits —
  final masks are bit-for-bit the unaggregated engine's.

Membership changes that leave the tree untouched (a dedup hit, removing one
of several members) refresh the leaf annotation through the engines'
``refresh_links`` path — a path re-annotation plus surgical cache repair,
not a rebuild.  The descent cache is repaired the same way: churn evicts
only the entries whose event satisfies the churned group's canonical
predicate (every entry containing — or now owed — that group keys an event
its canonical accepts), falling back to a wholesale flush only past
:data:`DESCENT_REPAIR_SCAN_LIMIT` entries.  Everything downstream — trit
annotations, :class:`~repro.matching.compile.ProjectionCache`, surgical
shard-cache repair, batching, and all three kernel backends — runs
unchanged over the compressed program.

Observability: ``match.aggregation.compression_ratio`` (subscriptions per
compiled leaf), ``match.aggregation.forest_nodes`` (live groups),
``match.aggregation.dedup_hits`` (inserts absorbed without touching the
inner engine), ``match.aggregation.cover_scan_len`` (histogram of
subsumption verifications per attach), ``match.aggregation.index_candidates``
/ ``index_hits`` (index filter volume and precision), and
``match.aggregation.subtree_compiles`` (descent mini-programs built).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import SubscriptionError
from repro.core.annotation import LinkOfSubscriber
from repro.core.link_matcher import LinkMatchResult
from repro.core.trits import TritVector, pack_tritvector, unpack_tritvector
from repro.matching.backends import kernel_backend_for
from repro.matching.base import MatcherEngine
from repro.matching.compile import (
    CompiledProgram,
    ProjectionCache,
    compile_subscriptions,
)
from repro.matching.covering_index import CoveringIndex
from repro.matching.events import Event
from repro.matching.predicates import Predicate, Subscription, value_tuple_test
from repro.matching.pst import MatchResult
from repro.matching.subsumption import canonical_test, predicate_subsumes
from repro.obs import get_registry

#: Cover searches *verify* at most this many candidate groups per attach
#: (``predicate_subsumes`` calls, across the cover descent and the demotion
#: sweep).  Past the limit a new group becomes a root without looking for
#: (or demoting) further covers — deduplication stays O(1) and exact,
#: covering compression degrades gracefully.  Correctness never depends on
#: the forest shape.
DEFAULT_COVER_SCAN_LIMIT = 512

#: Entries in the descent cache (event values -> matching groups).  Churn
#: repairs the cache surgically — see :data:`DESCENT_REPAIR_SCAN_LIMIT`.
DESCENT_CACHE_CAPACITY = 4096

#: Surgical descent-cache repair scans every cached key against the churned
#: group's canonical predicate; past this many entries one wholesale flush
#: is cheaper than the scan (mirrors the sharded engine's repair limit).
DESCENT_REPAIR_SCAN_LIMIT = 2048

#: Descent-cache misses that walk into a root's subtree before the subtree
#: is compiled into a mini-program.  ``0`` disables compiled descent.
DEFAULT_SUBTREE_COMPILE_THRESHOLD = 8

#: Smallest subtree (descendant count) worth compiling; interpreting a
#: couple of children is cheaper than a program dispatch.
DEFAULT_SUBTREE_MIN_SIZE = 4

#: Subscriber identity of the sentinel representatives registered with the
#: inner engine.  Representatives never reach users: matching expands them
#: to members, ``subscriptions`` lists members only.
REPRESENTATIVE_SUBSCRIBER = "<aggregate>"

#: Histogram buckets for verifications-per-attach: indexed attaches cluster
#: in the first few buckets, linear scans stretch toward the scan limit.
_COVER_SCAN_BOUNDARIES = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


def canonicalize_predicate(predicate: Predicate) -> Predicate:
    """The canonical form under which identical-acceptance predicates unify.

    Per attribute: :func:`~repro.matching.subsumption.canonical_test` —
    strict integer bounds close and one-sided range tests normalize to
    intervals — so ``x < 4`` and ``x <= 3`` over an INTEGER attribute
    produce the *same* test object value, and
    :class:`~repro.matching.predicates.Predicate` hashing makes the group
    lookup a dict probe.  Equality tests and don't-cares are already
    canonical, so a canonical predicate carries only the three test shapes
    :class:`~repro.matching.covering_index.CoveringIndex` indexes.  The
    canonical predicate accepts exactly the same events as the original.
    """
    tests = {}
    changed = False
    for attribute, test in zip(predicate.schema.attributes, predicate.tests):
        if test.is_dont_care:
            continue
        canonical = canonical_test(attribute, test)
        if canonical is not test:
            changed = True
        tests[attribute.name] = canonical
    if not changed:
        return predicate
    return Predicate(predicate.schema, tests)


class _Group:
    """One distinct canonical predicate: its members and forest links.

    ``representative`` is the sentinel subscription registered with the
    inner engine *while the group is a root*; covered (non-root) groups are
    not compiled at all and are reached by forest descent.  Roots with hot
    subtrees additionally carry a compiled descent mini-program
    (``subtree_program`` over every descendant's representative,
    ``subtree_groups`` mapping those representative ids back to groups,
    ``descent_hits`` counting cache-miss walks toward promotion).
    """

    __slots__ = (
        "canonical",
        "representative",
        "members",
        "children",
        "parent",
        "subtree_program",
        "subtree_groups",
        "descent_hits",
    )

    def __init__(self, canonical: Predicate, subscription: Subscription) -> None:
        self.canonical = canonical
        self.representative = Subscription(
            canonical,
            REPRESENTATIVE_SUBSCRIBER,
            # Representatives draw from the global id counter like any other
            # subscription (ids must be unique within the inner engine).
        )
        self.members: Dict[int, Subscription] = {
            subscription.subscription_id: subscription
        }
        self.children: List["_Group"] = []
        self.parent: Optional["_Group"] = None
        self.subtree_program: Optional[CompiledProgram] = None
        self.subtree_groups: Optional[Dict[int, "_Group"]] = None
        self.descent_hits = 0

    def __repr__(self) -> str:
        return (
            f"_Group({self.canonical.describe()!r}, {len(self.members)} members, "
            f"{len(self.children)} children, root={self.parent is None})"
        )


class AggregatingEngine(MatcherEngine):
    """Covering-forest aggregation in front of a compiled or sharded engine.

    Exposes the full :class:`~repro.matching.base.MatcherEngine` surface;
    match sets, brute-force sets, and refined link masks are exactly the
    wrapped engine's *without* aggregation (the property suite in
    ``tests/property/test_prop_aggregation.py`` pins this down).  Step
    counts are attributed to the deduplicated leaves: the inner engine's
    count plus one step per covered group evaluated during forest descent.

    Construct directly around an engine instance, or through
    :func:`~repro.matching.engines.create_engine` with ``aggregate=True``.
    """

    name = "aggregating"

    def __init__(
        self,
        inner: MatcherEngine,
        *,
        cover_scan_limit: int = DEFAULT_COVER_SCAN_LIMIT,
        use_index: bool = True,
        subtree_compile_threshold: int = DEFAULT_SUBTREE_COMPILE_THRESHOLD,
        subtree_min_size: int = DEFAULT_SUBTREE_MIN_SIZE,
    ) -> None:
        if not hasattr(inner, "refresh_links"):
            raise SubscriptionError(
                f"engine {inner.name!r} cannot refresh leaf link annotations "
                "in place — aggregation requires the compiled or sharded engine"
            )
        self.inner = inner
        self.schema = inner.schema
        self.cover_scan_limit = cover_scan_limit
        self.subtree_compile_threshold = subtree_compile_threshold
        self.subtree_min_size = subtree_min_size
        #: The attribute-inverted cover-candidate index; ``None`` in linear
        #: (``use_index=False``) mode.
        self._index: Optional[CoveringIndex] = CoveringIndex() if use_index else None
        #: Kernel backend for descent mini-programs: whatever in-process
        #: kernel the inner engine's execution mode corresponds to.
        self._descent_backend = kernel_backend_for(
            getattr(inner, "backend_name", None)
        )
        #: canonical predicate -> group, for every live group.
        self._groups: Dict[Predicate, _Group] = {}
        #: canonical predicate -> group, roots only (insertion-ordered).
        self._roots: Dict[Predicate, _Group] = {}
        #: member subscription_id -> owning group.
        self._group_of: Dict[int, _Group] = {}
        #: representative subscription_id -> group (roots only).
        self._rep_group: Dict[int, _Group] = {}
        self._num_links: Optional[int] = None
        self._link_of: Optional[LinkOfSubscriber] = None
        self._descent_cache = ProjectionCache(
            DESCENT_CACHE_CAPACITY, kind="aggregation"
        )
        #: Instance knob so tests can force the flush fallback.
        self._descent_repair_limit = DESCENT_REPAIR_SCAN_LIMIT
        self.dedup_hits = 0
        self.cover_probes = 0
        self.cover_candidates_total = 0
        self.subtree_compiles = 0
        registry = get_registry()
        self._obs_dedup = registry.counter("match.aggregation.dedup_hits")
        self._obs_forest_nodes = registry.gauge("match.aggregation.forest_nodes")
        self._obs_compression = registry.gauge("match.aggregation.compression_ratio")
        self._obs_cover_scan = registry.histogram(
            "match.aggregation.cover_scan_len", _COVER_SCAN_BOUNDARIES
        )
        self._obs_index_candidates = registry.counter(
            "match.aggregation.index_candidates"
        )
        self._obs_index_hits = registry.counter("match.aggregation.index_hits")
        self._obs_subtree_compiles = registry.counter(
            "match.aggregation.subtree_compiles"
        )

    # ------------------------------------------------------------------
    # Introspection

    @property
    def subscriptions(self) -> List[Subscription]:
        """The registered *member* subscriptions (representatives excluded)."""
        return [
            member
            for group in self._groups.values()
            for member in group.members.values()
        ]

    @property
    def subscription_count(self) -> int:
        return len(self._group_of)

    @property
    def forest_nodes(self) -> int:
        """Live groups (distinct canonical predicates)."""
        return len(self._groups)

    @property
    def root_count(self) -> int:
        """Groups compiled into the inner engine (distinct leaves)."""
        return len(self._roots)

    @property
    def compression_ratio(self) -> float:
        """Registered subscriptions per compiled leaf (>= 1.0)."""
        return len(self._group_of) / max(1, len(self._roots))

    @property
    def mean_cover_candidates(self) -> float:
        """Mean subsumption verifications per cover search (attach)."""
        return self.cover_candidates_total / max(1, self.cover_probes)

    def group_of(self, subscription_id: int) -> Tuple[Predicate, int, bool]:
        """(canonical predicate, member count, is_root) for a registration —
        introspection for tests and diagnostics."""
        group = self._group_of.get(subscription_id)
        if group is None:
            raise SubscriptionError(f"unknown subscription id {subscription_id}")
        return group.canonical, len(group.members), group.parent is None

    def match_brute_force(self, event: Event) -> List[Subscription]:
        """Reference semantics: evaluate every member predicate directly."""
        return [
            member
            for group in self._groups.values()
            for member in group.members.values()
            if member.predicate.matches(event)
        ]

    # ------------------------------------------------------------------
    # Churn (incremental — no forest rebuild)

    def insert(self, subscription: Subscription) -> None:
        subscription_id = subscription.subscription_id
        if subscription_id in self._group_of:
            raise SubscriptionError(
                f"subscription #{subscription_id} is already registered"
            )
        if not subscription.predicate.is_satisfiable:
            # Mirror the tree's refusal exactly — aggregation must not
            # silently absorb what the unaggregated engine rejects.
            raise SubscriptionError(
                f"refusing to register unsatisfiable predicate "
                f"{subscription.predicate.describe()!r}"
            )
        canonical = canonicalize_predicate(subscription.predicate)
        group = self._groups.get(canonical)
        if group is not None:
            # Dedup hit: the compiled arrays do not move at all.
            group.members[subscription_id] = subscription
            self._group_of[subscription_id] = group
            self.dedup_hits += 1
            self._obs_dedup.inc()
            self._membership_changed(group)
        else:
            group = _Group(canonical, subscription)
            self._groups[canonical] = group
            self._group_of[subscription_id] = group
            self._attach(group)
        self._repair_descent_cache(group)
        self._invalidate_link_projection()
        self._update_gauges()

    def remove(self, subscription_id: int) -> Subscription:
        group = self._group_of.pop(subscription_id, None)
        if group is None:
            raise SubscriptionError(f"unknown subscription id {subscription_id}")
        subscription = group.members.pop(subscription_id)
        if group.members:
            # The group survives; only its link union may have shrunk.
            self._membership_changed(group)
        else:
            self._dissolve(group)
        self._repair_descent_cache(group)
        self._invalidate_link_projection()
        self._update_gauges()
        return subscription

    def _attach(self, group: _Group) -> None:
        """Place a fresh group in the forest: descend from a covering root,
        demote any siblings the new predicate covers, and register the
        representative with the inner engine iff the group lands at a root."""
        if self._index is not None:
            self._attach_indexed(group)
            self._index.add(group, group.canonical)
        else:
            self._attach_linear(group)

    def _attach_indexed(self, group: _Group) -> None:
        """Index-driven attach: candidate groups come from the covering
        index's posting lists; only candidates are verified with
        ``predicate_subsumes``, all under one shared verification budget
        (:attr:`cover_scan_limit`).

        The verified cover set is ancestor-closed whenever the index
        surfaced the ancestors (covering is transitive), so walking it by
        ``parent`` pointer reproduces the linear level-by-level descent;
        a cover the filter misses only costs compression.
        """
        canonical = group.canonical
        budget = self.cover_scan_limit
        verified = 0
        candidates = self._index.cover_candidates(canonical)
        self._obs_index_candidates.inc(len(candidates))
        covers_found: List[_Group] = []
        for candidate in candidates:
            if verified >= budget:
                break
            verified += 1
            if predicate_subsumes(candidate.canonical, canonical):
                covers_found.append(candidate)
        self._obs_index_hits.inc(len(covers_found))
        parent: Optional[_Group] = None
        while True:
            deeper = next(
                (cover for cover in covers_found if cover.parent is parent), None
            )
            if deeper is None:
                break
            parent = deeper
        demoted: List[_Group] = []
        covered = self._index.covered_candidates(canonical, limit=budget - verified)
        if covered is None:
            # Universal probe: every group is covered — scan the actual
            # sibling level like the linear path would.
            covered = list(
                self._roots.values() if parent is None else parent.children
            )
        else:
            self._obs_index_candidates.inc(len(covered))
        hits = 0
        for candidate in covered:
            if verified >= budget:
                break
            if candidate is group or candidate.parent is not parent:
                continue
            verified += 1
            if predicate_subsumes(canonical, candidate.canonical):
                demoted.append(candidate)
                hits += 1
        self._obs_index_hits.inc(hits)
        self._record_cover_scan(verified)
        self._place(group, parent, demoted)

    def _attach_linear(self, group: _Group) -> None:
        """The bounded linear sibling scans (``use_index=False``): descend
        level by level, testing every sibling until the scan limit."""
        verified = 0
        parent: Optional[_Group] = None
        siblings: Union[Dict[Predicate, _Group], List[_Group]] = self._roots
        while True:
            cover, scanned = self._covering_in(
                siblings.values() if parent is None else siblings, group
            )
            verified += scanned
            if cover is None:
                break
            parent = cover
            siblings = parent.children
        demoted, scanned = self._covered_in(
            siblings.values() if parent is None else siblings, group
        )
        verified += scanned
        self._record_cover_scan(verified)
        self._place(group, parent, demoted)

    def _covering_in(
        self, groups: Iterable[_Group], group: _Group
    ) -> Tuple[Optional[_Group], int]:
        """A group among ``groups`` covering ``group``, plus groups scanned
        (bounded by :attr:`cover_scan_limit`)."""
        canonical = group.canonical
        scanned = 0
        for candidate in groups:
            if scanned >= self.cover_scan_limit:
                break
            if candidate is group:
                continue
            scanned += 1
            if predicate_subsumes(candidate.canonical, canonical):
                return candidate, scanned
        return None, scanned

    def _covered_in(
        self, groups: Iterable[_Group], group: _Group
    ) -> Tuple[List[_Group], int]:
        """Groups among ``groups`` that ``group`` covers, plus groups
        scanned (bounded by :attr:`cover_scan_limit`)."""
        canonical = group.canonical
        covered: List[_Group] = []
        scanned = 0
        for candidate in groups:
            if scanned >= self.cover_scan_limit:
                break
            if candidate is group:
                continue
            scanned += 1
            if predicate_subsumes(canonical, candidate.canonical):
                covered.append(candidate)
        return covered, scanned

    def _record_cover_scan(self, verified: int) -> None:
        self.cover_probes += 1
        self.cover_candidates_total += verified
        self._obs_cover_scan.observe(verified)

    def _place(
        self, group: _Group, parent: Optional[_Group], demoted: List[_Group]
    ) -> None:
        """Wire ``group`` under ``parent`` (root when ``None``), pulling the
        ``demoted`` former siblings under it, and keep the inner engine and
        subtree programs consistent."""
        for sibling in demoted:
            if parent is None:
                del self._roots[sibling.canonical]
                self.inner.remove(sibling.representative.subscription_id)
                del self._rep_group[sibling.representative.subscription_id]
            else:
                parent.children.remove(sibling)
            # An ex-root's mini-program covered *its* subtree; demoted it is
            # no longer a descent entry point.
            self._drop_subtree_program(sibling)
            sibling.parent = group
            group.children.append(sibling)
        group.parent = parent
        if parent is None:
            self._roots[group.canonical] = group
            self._register_root(group)
        else:
            parent.children.append(group)
            # The enclosing root's compiled descent no longer sees every
            # descendant; drop it and let the hit counter re-promote.
            self._invalidate_root_program(group)

    @staticmethod
    def _root_of(group: _Group) -> _Group:
        while group.parent is not None:
            group = group.parent
        return group

    def _invalidate_root_program(self, group: _Group) -> None:
        self._drop_subtree_program(self._root_of(group))

    @staticmethod
    def _drop_subtree_program(group: _Group) -> None:
        group.subtree_program = None
        group.subtree_groups = None
        group.descent_hits = 0

    def _register_root(self, group: _Group) -> None:
        self._rep_group[group.representative.subscription_id] = group
        self.inner.insert(group.representative)

    def _dissolve(self, group: _Group) -> None:
        """Remove an emptied group, promoting or reparenting its children."""
        del self._groups[group.canonical]
        if self._index is not None:
            self._index.remove(group)
        parent = group.parent
        if parent is None:
            del self._roots[group.canonical]
            self.inner.remove(group.representative.subscription_id)
            del self._rep_group[group.representative.subscription_id]
            self._drop_subtree_program(group)
            # Children lose their covering parent: each becomes a root and
            # compiles its own representative (its subtree stays intact —
            # covering within the subtree still holds).
            for child in group.children:
                child.parent = None
                self._roots[child.canonical] = child
                self._register_root(child)
        else:
            # A covered group's children are covered by the grandparent too
            # (covering is transitive), so they reattach one level up.
            parent.children.remove(group)
            for child in group.children:
                child.parent = parent
                parent.children.append(child)
            self._invalidate_root_program(parent)
        group.children = []

    def _membership_changed(self, group: _Group) -> None:
        """After a membership-only change: refresh the compiled leaf's link
        union in place.  Only roots have compiled leaves, and only bound
        links have annotations to go stale."""
        if group.parent is not None or self._link_of is None:
            return
        self.inner.refresh_links(group.representative)

    def _repair_descent_cache(self, group: _Group) -> None:
        """Surgically repair the descent cache after churn touching
        ``group``: an entry's group list (or its memoized expansions) is
        stale only if the entry's event satisfies the churned group's
        canonical predicate — every affected group (the churned one, its
        demoted/promoted/reparented relatives) accepts a subset of those
        events, and an entry contains a group iff the group's canonical
        matches the entry's event.  Surviving entries keep their (possibly
        stale) inner step counts, mirroring the sharded engine's surgical
        repair.  Past :attr:`_descent_repair_limit` entries a wholesale
        flush is cheaper than scanning every key."""
        cache = self._descent_cache
        if len(cache) == 0:
            return
        if len(cache) > self._descent_repair_limit:
            cache.flush()
            return
        stale = value_tuple_test(group.canonical)
        cache.evict_if(lambda key, _entry: stale(key))

    def _update_gauges(self) -> None:
        self._obs_forest_nodes.set(len(self._groups))
        self._obs_compression.set(self.compression_ratio)

    def invalidate(self) -> None:
        """Drop the inner engine's compiled form (forest state is exact and
        survives; the next match recompiles the deduplicated leaves)."""
        self._descent_cache.flush()
        self.inner.invalidate()

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "AggregatingEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Matching (expansion at the engine boundary)

    def _subtree_program_for(self, root: _Group) -> Optional[CompiledProgram]:
        """The root's compiled descent program, promoting on the way: each
        cache-miss walk into the subtree bumps ``descent_hits``; past the
        threshold the descendants are lowered into a mini-program (subtrees
        below :attr:`subtree_min_size` reset the counter — dispatch would
        cost more than interpreting a couple of children)."""
        program = root.subtree_program
        if program is not None:
            return program
        if self.subtree_compile_threshold <= 0:
            return None
        root.descent_hits += 1
        if root.descent_hits < self.subtree_compile_threshold:
            return None
        descendants: List[_Group] = []
        stack = list(root.children)
        while stack:
            child = stack.pop()
            descendants.append(child)
            stack.extend(child.children)
        if len(descendants) < self.subtree_min_size:
            root.descent_hits = 0
            return None
        return self._compile_subtree(root, descendants)

    def _compile_subtree(
        self, root: _Group, descendants: List[_Group]
    ) -> CompiledProgram:
        """Lower every descendant's representative into one flat program.
        A flat match over all descendants equals the pruned interpreted
        walk: covering is transitive, so a matching descendant's ancestors
        match too and never prune it away.  Mini-programs run cacheless —
        they already sit behind the descent cache."""
        program = compile_subscriptions(
            self.schema,
            [child.representative for child in descendants],
            backend=self._descent_backend,
            cache_capacity=0,
        )
        root.subtree_program = program
        root.subtree_groups = {
            child.representative.subscription_id: child for child in descendants
        }
        self.subtree_compiles += 1
        self._obs_subtree_compiles.inc()
        return program

    def _descend(self, event: Event, inner_result: Optional[MatchResult] = None):
        """The matching *groups* for an event: the inner engine's matched
        roots plus every covered descendant whose canonical predicate
        accepts the event (one step per descendant evaluated; a rejecting
        descendant prunes its whole subtree).  Hot subtrees run compiled
        (:meth:`_subtree_program_for`) — the mini-program's matches and
        step count stand in for the interpreted walk.

        Served from a projection-keyed LRU (surgically repaired on churn —
        see :meth:`_repair_descent_cache`): covering descent re-evaluates
        predicates, so on warm Zipf event streams the cache is what keeps
        the aggregated engine's per-event cost at the deduplicated leaves'
        level.  Returns a mutable entry
        ``[groups, inner_steps, descent_steps, members_memo, bits_memo]`` —
        the memo slots start ``None`` and are filled lazily by
        :meth:`_expand` / :meth:`_descendant_link_bits`.  Memoizing on the
        entry is safe because churn evicts every entry whose event the
        churned group accepts, so group membership is frozen for an entry's
        lifetime.
        """
        key = event.as_tuple()
        cached = self._descent_cache.get(key)
        if cached is not None:
            return cached
        if inner_result is None:
            inner_result = self.inner.match(event)
        groups: List[_Group] = []
        steps = 0
        stack: List[_Group] = []
        for representative in inner_result.subscriptions:
            group = self._rep_group.get(representative.subscription_id)
            if group is None:
                raise SubscriptionError(
                    f"inner engine returned non-representative {representative!r}"
                )
            groups.append(group)
            if not group.children:
                continue
            program = self._subtree_program_for(group)
            if program is not None:
                result = program.match(event)
                subtree_groups = group.subtree_groups
                for matched in result.subscriptions:
                    groups.append(subtree_groups[matched.subscription_id])
                steps += result.steps
            else:
                stack.extend(group.children)
        while stack:
            child = stack.pop()
            steps += 1
            if child.canonical.matches(event):
                groups.append(child)
                stack.extend(child.children)
        entry = [groups, inner_result.steps, steps, None, None]
        self._descent_cache.put(key, entry)
        return entry

    @staticmethod
    def _expand(entry) -> List[Subscription]:
        """The entry's groups expanded to members, memoized on the entry so
        a warm cache hit costs one probe, not a rebuild of the match set."""
        matched = entry[3]
        if matched is None:
            matched = []
            for group in entry[0]:
                matched.extend(group.members.values())
            entry[3] = matched
        return matched

    def match(self, event: Event) -> MatchResult:
        entry = self._descend(event)
        return MatchResult(self._expand(entry), entry[1] + entry[2])

    def match_batch(self, events: Sequence[Event]) -> List[MatchResult]:
        inner_results = self.inner.match_batch(events)
        results: List[MatchResult] = []
        for event, result in zip(events, inner_results):
            entry = self._descend(event, result)
            results.append(MatchResult(self._expand(entry), entry[1] + entry[2]))
        return results

    # ------------------------------------------------------------------
    # Link matching (masks over the deduplicated leaves)

    def bind_links(self, num_links: int, link_of_subscriber: LinkOfSubscriber) -> None:
        self._num_links = num_links
        self._link_of = link_of_subscriber
        # Cached entries may carry link bits memoized under the old binding.
        self._descent_cache.flush()
        self._invalidate_link_projection()
        self.inner.bind_links(num_links, self._links_of_representative)

    def _projection_link_of(self) -> Optional[LinkOfSubscriber]:
        """Digest projection maps *member* subscription ids (the globally
        stable identity digests carry) through the outer link mapping — the
        inner binding only knows per-broker representative ids, which are
        not stable across brokers."""
        return self._link_of

    def _links_of_representative(
        self, representative: Subscription
    ) -> Union[int, Tuple[int, ...]]:
        """The multi-position ``LinkOfSubscriber`` handed to the inner
        engine: a deduplicated leaf lights the union of its members' links
        (unreachable members contribute nothing)."""
        group = self._rep_group.get(representative.subscription_id)
        if group is None or self._link_of is None:
            return -1
        positions = set()
        for member in group.members.values():
            position = self._link_of(member)
            if position >= 0:
                positions.add(position)
        return tuple(sorted(positions))

    def _descendant_link_bits(self, event: Event) -> Tuple[int, int]:
        """Link bits owed by *covered* groups whose predicate matches the
        event (roots' bits already live in the compiled leaf annotations).
        Rides the cached descent and memoizes on its entry — both the inner
        match and the forest walk are projection-cache-served on warm
        streams.  Returns ``(link_bits, descent_steps)``."""
        assert self._link_of is not None
        entry = self._descend(event)
        bits = entry[4]
        if bits is None:
            bits = 0
            for group in entry[0]:
                if group.parent is None:
                    continue
                for member in group.members.values():
                    position = self._link_of(member)
                    if position >= 0:
                        bits |= 1 << position
            entry[4] = bits
        return bits, entry[2]

    def match_links(
        self, event: Event, initialization_mask: TritVector
    ) -> LinkMatchResult:
        result = self.inner.match_links(event, initialization_mask)
        if len(self._groups) == len(self._roots):
            # Pure deduplication (no covered groups): the inner refinement
            # over the deduplicated leaves is already exact.
            return result
        assert self._num_links is not None
        _yes_bits, maybe_bits = pack_tritvector(initialization_mask)
        extra_bits, descent_steps = self._descendant_link_bits(event)
        final_yes, _ = pack_tritvector(result.mask)
        merged = final_yes | (extra_bits & maybe_bits)
        return LinkMatchResult(
            unpack_tritvector(merged, 0, self._num_links),
            result.steps + descent_steps,
        )

    def match_links_batch(
        self, events: Sequence[Event], initialization_mask: TritVector
    ) -> List[LinkMatchResult]:
        results = self.inner.match_links_batch(events, initialization_mask)
        if len(self._groups) == len(self._roots):
            return results
        assert self._num_links is not None
        _yes_bits, maybe_bits = pack_tritvector(initialization_mask)
        merged: List[LinkMatchResult] = []
        for event, result in zip(events, results):
            extra_bits, descent_steps = self._descendant_link_bits(event)
            final_yes, _ = pack_tritvector(result.mask)
            merged_yes = final_yes | (extra_bits & maybe_bits)
            merged.append(
                LinkMatchResult(
                    unpack_tritvector(merged_yes, 0, self._num_links),
                    result.steps + descent_steps,
                )
            )
        return merged

    def __repr__(self) -> str:
        return (
            f"AggregatingEngine({len(self._group_of)} subscriptions -> "
            f"{len(self._roots)} compiled leaves, {len(self._groups)} groups, "
            f"inner={self.inner!r})"
        )
