"""PST optimizations — Section 2.1 of the paper.

Three optimizations are described:

1. **Factoring** (:class:`FactoredMatcher`): selected *index attributes* —
   preferably ones that subscriptions rarely leave as ``*`` — are pulled out
   of the tree, and a separate sub-PST is built for each combination of index
   values.  A subscription with a ``*`` on an index attribute is replicated
   into every sub-PST for that attribute's domain (the space cost the paper
   mentions); matching becomes a table lookup on the event's index values
   followed by a search of one (smaller) sub-PST.

2. **Trivial test elimination** is implemented directly on the tree — see
   :meth:`repro.matching.pst.ParallelSearchTree.eliminate_trivial_tests`.

3. **Delayed branching** (:class:`SearchDag`): instead of forking a parallel
   subsearch at every ``*``-branch, the ``*``-subtree is merged down into
   each value branch, so a search follows exactly *one* branch per node (the
   value branch when the event's value has one, otherwise the "else" branch).
   Merged subtrees are shared, so the structure becomes a directed acyclic
   graph — the paper notes that "after applying optimizations, the parallel
   search tree will no longer be a tree but instead a directed acyclic
   graph."  This trades space for a worst-case search of one node per
   attribute, and is the same shape as the subscription automata the paper
   cites from Gough & Smith.

All matchers implement the small informal interface of
:class:`repro.matching.base.Matcher` so the broker engine, the simulator and
the benchmarks can swap them freely.
"""

from __future__ import annotations

import itertools
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import SubscriptionError
from repro.matching.base import Matcher
from repro.matching.compile import CompiledProgram, compile_tree
from repro.matching.events import Event
from repro.matching.pst import MatchResult, ParallelSearchTree, PSTNode
from repro.obs import get_registry
from repro.matching.predicates import EqualityTest, Subscription
from repro.matching.schema import AttributeValue, EventSchema

_dag_ids = itertools.count(1)


class _OutOfDomain:
    """Sentinel index-key component for event values outside the declared
    domain.  Subscriptions that can accept such values (don't-cares, range
    tests, equalities on out-of-domain constants) are also replicated into
    the matching out-of-domain bucket, with their index tests kept intact so
    the bucket's sub-PST can still discriminate."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<out-of-domain>"


#: The shared out-of-domain key component.
OUT_OF_DOMAIN = _OutOfDomain()


class FactoredMatcher(Matcher):
    """Factoring (Section 2.1, item 1): one sub-PST per index-value combo.

    Parameters
    ----------
    schema:
        The event schema.
    index_attributes:
        Names of the attributes to factor out, in lookup order.
    domains:
        Finite value domains; required for every index attribute (a ``*`` on
        an index attribute replicates the subscription across the whole
        domain, so the domain must be known).  Domains for non-index
        attributes are passed through to the sub-PSTs for annotation use.
    residual_order:
        Optional attribute order for the residual sub-PSTs (must be a
        permutation of the non-index attributes).
    engine:
        ``"tree"`` searches the sub-PSTs directly; ``"compiled"`` lowers each
        sub-PST with :mod:`repro.matching.compile` on first use and matches
        through the array kernels (programs are invalidated by mutation and
        by :meth:`compact`).  Either way match sets and step counts are
        identical.

    Events whose index values fall outside the declared domains select
    :data:`OUT_OF_DOMAIN` buckets, so matching stays exactly equivalent to
    brute force even on values the domain never anticipated (at the cost of
    one extra replica for every subscription whose index test is not a
    specific in-domain equality).
    """

    def __init__(
        self,
        schema: EventSchema,
        index_attributes: Sequence[str],
        domains: Mapping[str, Iterable[AttributeValue]],
        *,
        residual_order: Optional[Sequence[str]] = None,
        engine: str = "tree",
        backend: Optional[str] = None,
    ) -> None:
        if not index_attributes:
            raise SubscriptionError("factoring needs at least one index attribute")
        if engine not in ("tree", "compiled"):
            raise SubscriptionError(
                f"unknown matcher engine {engine!r} — expected 'tree' or 'compiled'"
            )
        self.engine = engine
        # Kernel backend for the compiled sub-programs (tree mode has none).
        self.backend = backend
        self.schema = schema
        self.index_attributes: Tuple[str, ...] = tuple(index_attributes)
        self.domains: Dict[str, FrozenSet[AttributeValue]] = {
            name: frozenset(values) for name, values in domains.items()
        }
        for name in self.index_attributes:
            schema.position_of(name)
            if name not in self.domains or not self.domains[name]:
                raise SubscriptionError(
                    f"index attribute {name!r} needs a non-empty finite domain"
                )
        self._index_positions = tuple(schema.position_of(n) for n in self.index_attributes)
        residual_names = [n for n in schema.names if n not in self.index_attributes]
        if not residual_names:
            raise SubscriptionError("factoring every attribute leaves no residual tree")
        if residual_order is not None:
            if sorted(residual_order) != sorted(residual_names):
                raise SubscriptionError(
                    "residual_order must be a permutation of the non-index attributes"
                )
            residual_names = list(residual_order)
        self._residual_order = residual_names
        self._trees: Dict[Tuple[AttributeValue, ...], ParallelSearchTree] = {}
        self._programs: Dict[Tuple[AttributeValue, ...], CompiledProgram] = {}
        self._by_id: Dict[int, Subscription] = {}
        self._keys_by_id: Dict[int, List[Tuple[AttributeValue, ...]]] = {}
        self._dirty = False
        obs = get_registry()
        label = f"factored-{engine}"
        self._obs_matches = obs.counter("engine.matches", engine=label)
        self._obs_match_steps = obs.counter("engine.match_steps", engine=label)
        self._obs_index_misses = obs.counter("engine.factored.index_misses", engine=label)
        self._obs_compiles = obs.counter("engine.factored.compiles", engine=label)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_id)

    @property
    def subscriptions(self) -> List[Subscription]:
        return list(self._by_id.values())

    def trees(self) -> Iterable[Tuple[Tuple[AttributeValue, ...], ParallelSearchTree]]:
        """The populated ``(index key, sub-PST)`` pairs."""
        return self._trees.items()

    def _keys_for(self, subscription: Subscription) -> List[Tuple[AttributeValue, ...]]:
        """All index-key combinations a subscription applies to.

        Per index attribute the options are the in-domain values the test
        accepts, plus :data:`OUT_OF_DOMAIN` whenever the test could accept a
        value outside the domain (anything but an in-domain equality).
        """
        per_attribute: List[List[AttributeValue]] = []
        for name in self.index_attributes:
            test = subscription.predicate.test_for(name)
            domain = self.domains[name]
            if isinstance(test, EqualityTest):
                options: List[AttributeValue] = (
                    [test.value] if test.value in domain else [OUT_OF_DOMAIN]
                )
            else:
                options = [v for v in sorted(domain, key=repr) if test.evaluate(v)]
                options.append(OUT_OF_DOMAIN)
            if not options:
                return []
            per_attribute.append(options)
        return [tuple(combo) for combo in itertools.product(*per_attribute)]

    def _tree_for(self, key: Tuple[AttributeValue, ...]) -> ParallelSearchTree:
        tree = self._trees.get(key)
        if tree is None:
            # The index attributes stay in the sub-PST's schema (every
            # subscription in this tree has them fixed or ``*``), but they are
            # ordered last so they are always spliced out of the search path.
            order = self._residual_order + [
                n for n in self.schema.names if n in self.index_attributes
            ]
            tree = ParallelSearchTree(
                self.schema, attribute_order=order, domains=self.domains
            )
            self._trees[key] = tree
        return tree

    def insert(self, subscription: Subscription) -> None:
        """Register a subscription in every applicable sub-PST.

        Inside each sub-PST an index attribute fixed by the key is redundant,
        so the stored copy relaxes it to ``*`` — this keeps the sub-trees
        small, which is the whole point of factoring.  Index attributes whose
        key component is :data:`OUT_OF_DOMAIN` keep their original tests (the
        key does not pin the value there).
        """
        if subscription.subscription_id in self._by_id:
            raise SubscriptionError(
                f"subscription #{subscription.subscription_id} is already registered"
            )
        keys = self._keys_for(subscription)
        for key in keys:
            self._tree_for(key).insert(self._relaxed_for_key(subscription, key))
            self._programs.pop(key, None)
        self._by_id[subscription.subscription_id] = subscription
        self._keys_by_id[subscription.subscription_id] = keys
        self._dirty = True

    def _relaxed_for_key(
        self, subscription: Subscription, key: Tuple[AttributeValue, ...]
    ) -> Subscription:
        from repro.matching.predicates import Predicate  # local to avoid cycle noise

        pinned = {
            name
            for name, component in zip(self.index_attributes, key)
            if component is not OUT_OF_DOMAIN
        }
        tests = {
            name: test
            for name, test in zip(self.schema.names, subscription.predicate.tests)
            if not test.is_dont_care and name not in pinned
        }
        relaxed_predicate = Predicate(self.schema, tests)
        return Subscription(
            relaxed_predicate,
            subscription.subscriber,
            subscription_id=subscription.subscription_id,
        )

    def remove(self, subscription_id: int) -> Subscription:
        subscription = self._by_id.pop(subscription_id, None)
        if subscription is None:
            raise SubscriptionError(f"unknown subscription id {subscription_id}")
        for key in self._keys_by_id.pop(subscription_id):
            tree = self._trees[key]
            tree.remove(subscription_id)
            self._programs.pop(key, None)
            if len(tree) == 0:
                del self._trees[key]
        return subscription

    def compact(self) -> None:
        """Splice the always-star index levels left by relaxed insertions so
        they cost no search steps.  Idempotent; runs only after mutations."""
        if not self._dirty:
            return
        for tree in self._trees.values():
            tree.eliminate_trivial_tests()
        # Splicing restructures the trees in place, so every compiled form is
        # stale — drop them all and re-lower lazily on the next match.
        self._programs.clear()
        self._dirty = False

    def key_for_event(self, event: Event) -> Tuple[AttributeValue, ...]:
        """The index key an event selects (out-of-domain values map to the
        :data:`OUT_OF_DOMAIN` bucket)."""
        values = event.as_tuple()
        key = []
        for name, position in zip(self.index_attributes, self._index_positions):
            value = values[position]
            key.append(value if value in self.domains[name] else OUT_OF_DOMAIN)
        return tuple(key)

    def tree_for_event(self, event: Event) -> Optional[ParallelSearchTree]:
        """The sub-PST an event selects, or ``None`` if no subscription can
        match its index values."""
        return self._trees.get(self.key_for_event(event))

    def match(self, event: Event) -> MatchResult:
        """Table lookup on the index values, then search the sub-PST.

        The lookup counts as one matching step.
        """
        self.compact()
        key = self.key_for_event(event)
        tree = self._trees.get(key)
        self._obs_matches.inc()
        if tree is None:
            self._obs_index_misses.inc()
            self._obs_match_steps.inc()
            return MatchResult([], 1)
        if self.engine == "compiled":
            program = self._programs.get(key)
            if program is None:
                program = self._programs[key] = compile_tree(tree, backend=self.backend)
                self._obs_compiles.inc()
            result = program.match(event)
        else:
            result = tree.match(event)
        self._obs_match_steps.inc(result.steps + 1)
        return MatchResult(result.subscriptions, result.steps + 1)

    def match_brute_force(self, event: Event) -> List[Subscription]:
        return [s for s in self._by_id.values() if s.predicate.matches(event)]

    def __repr__(self) -> str:
        return (
            f"FactoredMatcher({len(self._by_id)} subscriptions, "
            f"{len(self._trees)} sub-trees, index={list(self.index_attributes)!r})"
        )


class DagNode:
    """A node of the delayed-branching search DAG.

    Unlike a PST node, a search visits *exactly one* child: the value branch
    for the event's value if present, otherwise ``else_branch``.
    ``subscriptions`` holds the subscriptions already fully matched when the
    search reaches this node (merged in from PST leaves during construction).
    """

    __slots__ = ("node_id", "attribute_position", "value_branches", "else_branch", "subscriptions")

    def __init__(self, attribute_position: Optional[int]) -> None:
        self.node_id = next(_dag_ids)
        self.attribute_position = attribute_position
        self.value_branches: Dict[AttributeValue, "DagNode"] = {}
        self.else_branch: Optional["DagNode"] = None
        self.subscriptions: List[Subscription] = []

    @property
    def is_leaf(self) -> bool:
        return self.attribute_position is None

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"DagNode(leaf, {len(self.subscriptions)} subs)"
        return f"DagNode(attr#{self.attribute_position}, {len(self.value_branches)} values)"


class SearchDag:
    """Delayed branching (Section 2.1, item 3): a deterministic search DAG.

    Built from a frozen :class:`ParallelSearchTree`; does not support
    incremental updates (rebuild after churn — the broker engine rebuilds
    lazily).  Only equality tests and don't-cares are supported, matching the
    scope the paper gives for the annotated-tree algorithms.
    """

    def __init__(self, tree: ParallelSearchTree) -> None:
        for node in tree.nodes():
            if node.range_branches:
                raise SubscriptionError(
                    "delayed branching supports equality and don't-care tests only"
                )
        self.schema = tree.schema
        self.attribute_order = tree.attribute_order
        self._source = tree
        self._memo: Dict[FrozenSet[int], DagNode] = {}
        self._members: Dict[int, PSTNode] = {n.node_id: n for n in tree.nodes()}
        self.root = self._build(frozenset([tree.root.node_id]))

    def _build(self, member_ids: FrozenSet[int]) -> DagNode:
        memoized = self._memo.get(member_ids)
        if memoized is not None:
            return memoized
        members = [self._members[i] for i in sorted(member_ids)]
        matched: List[Subscription] = []
        active: List[PSTNode] = []
        passive: List[PSTNode] = []
        level: Optional[int] = None
        for node in members:
            if node.is_leaf:
                matched.extend(node.subscriptions)
            elif level is None or node.attribute_position < level:
                level = node.attribute_position
        for node in members:
            if node.is_leaf:
                continue
            if node.attribute_position == level:
                active.append(node)
            else:
                passive.append(node)
        dag_node = DagNode(level)
        dag_node.subscriptions = matched
        self._memo[member_ids] = dag_node
        if level is None:
            return dag_node
        else_ids = frozenset(
            [n.star_child.node_id for n in active if n.star_child is not None]
            + [n.node_id for n in passive]
        )
        values: Set[AttributeValue] = set()
        for node in active:
            values.update(node.value_branches)
        for value in values:
            value_ids = frozenset(
                n.value_branches[value].node_id for n in active if value in n.value_branches
            )
            dag_node.value_branches[value] = self._build(value_ids | else_ids)
        if else_ids:
            dag_node.else_branch = self._build(else_ids)
        return dag_node

    def node_count(self) -> int:
        """Distinct DAG nodes (shared nodes counted once)."""
        return len(self._memo)

    @property
    def subscriptions(self) -> List[Subscription]:
        return self._source.subscriptions

    def match(self, event: Event) -> MatchResult:
        """Follow exactly one branch per node; steps = nodes visited."""
        if event.schema != self.schema:
            raise SubscriptionError("event schema does not match the DAG's schema")
        values = event.as_tuple()
        positions = tuple(self.schema.position_of(n) for n in self.attribute_order)
        matched: List[Subscription] = []
        steps = 0
        node: Optional[DagNode] = self.root
        while node is not None:
            steps += 1
            matched.extend(node.subscriptions)
            if node.is_leaf:
                break
            value = values[positions[node.attribute_position]]
            node = node.value_branches.get(value, node.else_branch)
        return MatchResult(matched, steps)

    def match_brute_force(self, event: Event) -> List[Subscription]:
        return self._source.match_brute_force(event)

    def __repr__(self) -> str:
        return f"SearchDag({len(self.subscriptions)} subscriptions, {self.node_count()} nodes)"
