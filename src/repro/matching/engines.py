"""The two interchangeable matcher engines behind :class:`MatcherEngine`.

* :class:`TreeEngine` wraps the object-graph implementations — a
  :class:`~repro.matching.pst.ParallelSearchTree` matched directly, with
  :class:`~repro.core.annotation.TreeAnnotation` +
  :class:`~repro.core.link_matcher.LinkMatcher` for link matching.
* :class:`CompiledEngine` maintains the same tree for structure but lowers
  it with :mod:`repro.matching.compile` and matches through the array
  kernels; subscription churn is absorbed by incremental re-lowering
  (:meth:`CompiledProgram.patch`) with a full recompile as fallback.

Both engines produce identical match sets, identical step counts, and
identical refined link masks (the equivalence property test in
``tests/property/test_prop_engine_equivalence.py`` pins this down); the
compiled engine is simply faster per event, while the tree engine has no
compile step and is the easier one to read next to the paper.  Consumers
pick by name through :func:`create_engine`; the project default is
``"compiled"``.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Union

from repro.errors import RoutingError, SubscriptionError
from repro.core.annotation import LinkOfSubscriber, TreeAnnotation
from repro.core.link_matcher import LinkMatcher, LinkMatchResult
from repro.core.trits import TritVector, pack_tritvector, unpack_tritvector
from repro.matching.backends import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    KernelBackend,
    create_backend,
)
from repro.matching.base import MatcherEngine
from repro.obs import get_registry
from repro.matching.compile import (
    DEFAULT_MATCH_CACHE_CAPACITY,
    CompiledProgram,
    compile_tree,
)
from repro.matching.events import Event
from repro.matching.pst import MatchResult, ParallelSearchTree
from repro.matching.predicates import Subscription
from repro.matching.schema import AttributeValue, EventSchema

#: Valid engine names, in preference order.
ENGINE_NAMES = ("compiled", "sharded", "tree")

#: The engine used when callers do not choose one.
DEFAULT_ENGINE = "compiled"

#: Bucket boundaries of the ``engine.match_batch.size`` histogram.
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class _EngineBase(MatcherEngine):
    """Shared tree ownership: both engines keep a live PST for structure."""

    def __init__(
        self,
        schema: EventSchema,
        *,
        attribute_order: Optional[Sequence[str]] = None,
        domains: Optional[Mapping[str, Sequence[AttributeValue]]] = None,
    ) -> None:
        self.schema = schema
        self.tree = ParallelSearchTree(
            schema, attribute_order=attribute_order, domains=domains
        )
        self._num_links: Optional[int] = None
        self._link_of_subscriber: Optional[LinkOfSubscriber] = None
        # Instruments come from the global registry (no-ops unless an entry
        # point enabled it before construction); fetched once here so the
        # per-match cost is a method call, not a registry lookup.
        registry = get_registry()
        self._obs_matches = registry.counter("engine.matches", engine=self.name)
        self._obs_match_steps = registry.counter("engine.match_steps", engine=self.name)
        self._obs_link_matches = registry.counter("engine.link_matches", engine=self.name)
        self._obs_link_match_steps = registry.counter(
            "engine.link_match_steps", engine=self.name
        )
        self._obs_batch_size = registry.histogram(
            "engine.match_batch.size", BATCH_SIZE_BUCKETS, engine=self.name
        )

    @property
    def subscriptions(self) -> List[Subscription]:
        return self.tree.subscriptions

    @property
    def subscription_count(self) -> int:
        return len(self.tree)

    def match_brute_force(self, event: Event) -> List[Subscription]:
        """Reference semantics: evaluate every predicate directly."""
        return self.tree.match_brute_force(event)

    def match_batch(self, events: Sequence[Event]) -> List[MatchResult]:
        self._obs_batch_size.observe(len(events))
        return super().match_batch(events)

    def _require_links(self) -> int:
        if self._num_links is None:
            raise RoutingError(
                f"{type(self).__name__}.match_links() requires a prior bind_links()"
            )
        return self._num_links

    def _check_mask(self, initialization_mask: TritVector) -> None:
        if len(initialization_mask) != self._num_links:
            raise ValueError(
                f"trit vector length mismatch: {self._num_links} vs "
                f"{len(initialization_mask)}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({len(self.tree)} subscriptions)"


class TreeEngine(_EngineBase):
    """Today's object-graph matcher behind the engine interface.

    Annotations are computed on first :meth:`match_links` and patched
    incrementally along the changed path on insert/remove (the behavior the
    router previously implemented inline)."""

    name = "tree"

    def __init__(
        self,
        schema: EventSchema,
        *,
        attribute_order: Optional[Sequence[str]] = None,
        domains: Optional[Mapping[str, Sequence[AttributeValue]]] = None,
    ) -> None:
        super().__init__(schema, attribute_order=attribute_order, domains=domains)
        self._annotation: Optional[TreeAnnotation] = None
        self._link_matcher: Optional[LinkMatcher] = None

    def insert(self, subscription: Subscription) -> None:
        self.tree.insert(subscription)
        self._patch_annotation(subscription)
        self._invalidate_link_projection()

    def remove(self, subscription_id: int) -> Subscription:
        subscription = self.tree.remove(subscription_id)
        self._patch_annotation(subscription)
        self._invalidate_link_projection()
        return subscription

    def _patch_annotation(self, subscription: Subscription) -> None:
        if self._annotation is not None:
            self._annotation.update_path(self.tree, subscription.predicate)

    def match(self, event: Event) -> MatchResult:
        result = self.tree.match(event)
        self._obs_matches.inc()
        self._obs_match_steps.inc(result.steps)
        return result

    def bind_links(
        self, num_links: int, link_of_subscriber: LinkOfSubscriber
    ) -> None:
        self._num_links = num_links
        self._link_of_subscriber = link_of_subscriber
        self._annotation = None
        self._link_matcher = None
        self._invalidate_link_projection()

    def match_links(
        self, event: Event, initialization_mask: TritVector
    ) -> LinkMatchResult:
        self._require_links()
        self._check_mask(initialization_mask)
        if self._annotation is None:
            assert self._num_links is not None
            assert self._link_of_subscriber is not None
            self._annotation = TreeAnnotation(self._num_links, self._link_of_subscriber)
            self._annotation.annotate(self.tree)
            self._link_matcher = LinkMatcher(self.tree, self._annotation)
            get_registry().counter("engine.annotation_rebuilds", engine=self.name).inc()
        assert self._link_matcher is not None
        result = self._link_matcher.match_links(event, initialization_mask)
        self._obs_link_matches.inc()
        self._obs_link_match_steps.inc(result.steps)
        return result


class CompiledEngine(_EngineBase):
    """The array-kernel matcher: compile lazily, patch incrementally.

    The program is (re)compiled on first use after construction or after a
    patch bail-out; annotations are packed bitmasks attached to the same
    program.  ``invalidate()`` forces a recompile (needed only if the
    underlying ``tree`` is mutated behind the engine's back, e.g. by calling
    ``tree.eliminate_trivial_tests()`` directly)."""

    name = "compiled"

    def __init__(
        self,
        schema: EventSchema,
        *,
        attribute_order: Optional[Sequence[str]] = None,
        domains: Optional[Mapping[str, Sequence[AttributeValue]]] = None,
        match_cache_capacity: int = DEFAULT_MATCH_CACHE_CAPACITY,
        backend: Union[str, KernelBackend, None] = None,
    ) -> None:
        super().__init__(schema, attribute_order=attribute_order, domains=domains)
        self._program: Optional[CompiledProgram] = None
        self._annotation_dirty = False
        self._match_cache_capacity = match_cache_capacity
        # Resolved once: recompiles after patch bail-outs must not silently
        # change execution backends, and an invalid name fails construction
        # instead of the first match.
        if backend is None:
            backend = DEFAULT_BACKEND
        self._backend: KernelBackend = (
            create_backend(backend) if isinstance(backend, str) else backend
        )
        registry = get_registry()
        self._obs_compiles = registry.counter("engine.compiled.recompiles")
        self._obs_patches = registry.counter("engine.compiled.patches")
        self._obs_patch_bailouts = registry.counter("engine.compiled.patch_bailouts")
        self._obs_waste_ratio = registry.gauge("engine.compiled.waste_ratio")

    def invalidate(self) -> None:
        """Drop the compiled form; the next match recompiles from the tree.

        The projection caches live on the discarded program, so flush them
        first: their hit/flush counters are program-independent aggregates,
        and a cache keyed against a dead program must never satisfy a lookup
        recorded as a hit.  The waste gauge resets with the program — a
        fresh compile starts waste-free."""
        if self._program is not None:
            if self._program.match_cache is not None:
                self._program.match_cache.flush()
            if self._program.link_cache is not None:
                self._program.link_cache.flush()
            self._program = None
            self._obs_waste_ratio.set(0.0)

    @property
    def program(self) -> CompiledProgram:
        """The current compiled form (compiling first if needed)."""
        return self._ensure_program()

    @property
    def backend_name(self) -> str:
        """Name of the kernel backend the program executes with."""
        return self._backend.name

    def _ensure_program(self) -> CompiledProgram:
        if self._program is None:
            self._program = compile_tree(
                self.tree,
                cache_capacity=self._match_cache_capacity,
                backend=self._backend,
            )
            self._annotation_dirty = self._num_links is not None
            self._obs_compiles.inc()
            self._obs_waste_ratio.set(0.0)
        return self._program

    def insert(self, subscription: Subscription) -> None:
        self.tree.insert(subscription)
        self._patch_program(subscription)

    def remove(self, subscription_id: int) -> Subscription:
        subscription = self.tree.remove(subscription_id)
        self._patch_program(subscription)
        return subscription

    def _patch_program(self, subscription: Subscription) -> None:
        if self._program is None:
            return
        if self._program.patch(self.tree, subscription.predicate):
            self._obs_patches.inc()
            self._obs_waste_ratio.set(
                self._program.waste / max(1, self._program.node_count)
            )
        else:
            self._obs_patch_bailouts.inc()
            self._program = None

    def match(self, event: Event) -> MatchResult:
        result = self._ensure_program().match(event)
        self._obs_matches.inc()
        self._obs_match_steps.inc(result.steps)
        return result

    def match_batch(self, events: Sequence[Event]) -> List[MatchResult]:
        self._obs_batch_size.observe(len(events))
        results = self._ensure_program().match_batch(events)
        self._obs_matches.inc(len(results))
        self._obs_match_steps.inc(sum(result.steps for result in results))
        return results

    def bind_links(
        self, num_links: int, link_of_subscriber: LinkOfSubscriber
    ) -> None:
        self._num_links = num_links
        self._link_of_subscriber = link_of_subscriber
        self._annotation_dirty = True

    def refresh_links(self, subscription: Subscription) -> None:
        """Recompute the link annotation along ``subscription``'s path after
        its *link mapping* changed without any structural tree change.

        The aggregation layer calls this when a deduplicated leaf's member
        set changes (the leaf now lights a different union of links while
        the tree is untouched).  Reuses the patch path: syncing an unchanged
        path is a no-op, but the bottom-up re-annotation picks up the new
        leaf mask and the caches flush — exactly the stale state.  No-op
        when nothing stale exists (no program, annotation pending anyway).
        """
        if self._program is None or self._annotation_dirty:
            return
        if not self._program.annotated:
            return
        self._patch_program(subscription)

    def _annotated_program(self, num_links: int) -> CompiledProgram:
        program = self._ensure_program()
        if self._annotation_dirty or not program.annotated:
            assert self._link_of_subscriber is not None
            program.annotate(num_links, self._link_of_subscriber)
            self._annotation_dirty = False
            get_registry().counter("engine.annotation_rebuilds", engine=self.name).inc()
        return program

    def _match_links_packed(
        self, event: Event, yes_bits: int, maybe_bits: int
    ) -> "tuple[int, int]":
        """Packed-mask link matching without per-engine obs accounting.

        Returns ``(final_yes_bits, steps)``.  This is the shard-side entry
        point of :class:`~repro.matching.sharding.ShardedEngine`: the
        sharded engine does its own (engine-labeled) accounting over the
        merged result, so the per-shard calls must not also bump the
        ``engine=compiled`` counters."""
        num_links = self._require_links()
        program = self._annotated_program(num_links)
        return program.match_links(event, yes_bits, maybe_bits)

    def _match_links_batch_packed(
        self, events: Sequence[Event], yes_bits: int, maybe_bits: int
    ) -> "List[tuple[int, int]]":
        """Batch form of :meth:`_match_links_packed` (same contract)."""
        num_links = self._require_links()
        program = self._annotated_program(num_links)
        return program.match_links_batch(events, yes_bits, maybe_bits)

    def match_links(
        self, event: Event, initialization_mask: TritVector
    ) -> LinkMatchResult:
        num_links = self._require_links()
        self._check_mask(initialization_mask)
        yes_bits, maybe_bits = pack_tritvector(initialization_mask)
        final_yes, steps = self._match_links_packed(event, yes_bits, maybe_bits)
        self._obs_link_matches.inc()
        self._obs_link_match_steps.inc(steps)
        return LinkMatchResult(unpack_tritvector(final_yes, 0, num_links), steps)

    def match_links_batch(
        self, events: Sequence[Event], initialization_mask: TritVector
    ) -> List[LinkMatchResult]:
        num_links = self._require_links()
        self._check_mask(initialization_mask)
        yes_bits, maybe_bits = pack_tritvector(initialization_mask)
        packed = self._match_links_batch_packed(events, yes_bits, maybe_bits)
        self._obs_link_matches.inc(len(packed))
        self._obs_link_match_steps.inc(sum(steps for _final, steps in packed))
        return [
            LinkMatchResult(unpack_tritvector(final_yes, 0, num_links), steps)
            for final_yes, steps in packed
        ]

    def project_links(
        self, subscription_ids: Sequence[int], yes_bits: int, maybe_bits: int
    ) -> "tuple[int, int]":
        """Digest projection over the compiled program's packed leaf
        annotations (one OR per matched leaf) — see
        :meth:`CompiledProgram.project_links` for the exactness argument."""
        num_links = self._require_links()
        program = self._annotated_program(num_links)
        result = program.project_links(subscription_ids, yes_bits, maybe_bits)
        self._project_links_counter().inc()
        return result


def create_engine(
    engine: str,
    schema: EventSchema,
    *,
    attribute_order: Optional[Sequence[str]] = None,
    domains: Optional[Mapping[str, Sequence[AttributeValue]]] = None,
    match_cache_capacity: Optional[int] = None,
    shards: Optional[int] = None,
    shard_policy: Optional[str] = None,
    shard_workers: int = 0,
    backend: Optional[str] = None,
    aggregate: bool = False,
) -> MatcherEngine:
    """Instantiate an engine by name (``"compiled"``, ``"sharded"``, ``"tree"``).

    ``match_cache_capacity`` tunes the compiled engine's projection caches
    (``0`` disables them); the tree engine has no cache and ignores it.
    ``shards`` / ``shard_policy`` / ``shard_workers`` configure the sharded
    engine (defaults: :data:`~repro.matching.sharding.DEFAULT_SHARDS` shards,
    :data:`~repro.matching.sharding.DEFAULT_SHARD_POLICY` policy, serial
    execution); the other engines ignore them.

    ``backend`` selects how the compiled record arrays are executed (one of
    :data:`~repro.matching.backends.BACKEND_NAMES`; ``None`` means
    :data:`~repro.matching.backends.DEFAULT_BACKEND`).  ``"procpool"`` is a
    sharded-engine execution mode — asking for it with ``engine="compiled"``
    is an error, and the tree engine (which has no compiled arrays) accepts
    only the default.

    ``aggregate=True`` wraps the compiled or sharded engine in an
    :class:`~repro.matching.aggregation.AggregatingEngine`: subscriptions
    are canonicalized and deduplicated through an online covering forest so
    the compiled arrays grow with *distinct* predicates, not subscribers.
    Match sets and refined link masks are unchanged; step counts are
    attributed to the deduplicated leaves.  The tree engine has no compiled
    form to compress, so ``aggregate`` with ``engine="tree"`` is an error.
    """
    if backend is not None and backend not in BACKEND_NAMES:
        raise SubscriptionError(
            f"unknown kernel backend {backend!r} — expected one of {BACKEND_NAMES}"
        )
    if aggregate:
        if engine == "tree":
            raise SubscriptionError(
                "engine 'tree' has no compiled program to compress — "
                "aggregate=True requires engine='compiled' or 'sharded'"
            )
        # Imported here: aggregation wraps engines this module creates, so a
        # module-scope import would cycle.
        from repro.matching.aggregation import AggregatingEngine

        inner = create_engine(
            engine,
            schema,
            attribute_order=attribute_order,
            domains=domains,
            match_cache_capacity=match_cache_capacity,
            shards=shards,
            shard_policy=shard_policy,
            shard_workers=shard_workers,
            backend=backend,
        )
        return AggregatingEngine(inner)
    if engine == "compiled":
        # create_backend rejects "procpool" with a pointer at engine="sharded".
        return CompiledEngine(
            schema,
            attribute_order=attribute_order,
            domains=domains,
            match_cache_capacity=(
                DEFAULT_MATCH_CACHE_CAPACITY
                if match_cache_capacity is None
                else match_cache_capacity
            ),
            backend=backend,
        )
    if engine == "sharded":
        # Imported here: sharding builds on CompiledEngine, so importing it
        # at module scope would be a cycle.
        from repro.matching.sharding import (
            DEFAULT_SHARD_POLICY,
            DEFAULT_SHARDS,
            ShardedEngine,
        )

        return ShardedEngine(
            schema,
            attribute_order=attribute_order,
            domains=domains,
            num_shards=DEFAULT_SHARDS if shards is None else shards,
            policy=DEFAULT_SHARD_POLICY if shard_policy is None else shard_policy,
            workers=shard_workers,
            match_cache_capacity=(
                DEFAULT_MATCH_CACHE_CAPACITY
                if match_cache_capacity is None
                else match_cache_capacity
            ),
            backend=DEFAULT_BACKEND if backend is None else backend,
        )
    if engine == "tree":
        if backend is not None and backend != DEFAULT_BACKEND:
            raise SubscriptionError(
                f"engine 'tree' walks the object graph directly and has no "
                f"kernel backends — backend {backend!r} requires engine="
                f"'compiled' or 'sharded'"
            )
        return TreeEngine(schema, attribute_order=attribute_order, domains=domains)
    raise SubscriptionError(
        f"unknown matcher engine {engine!r} — expected one of {ENGINE_NAMES}"
    )
