"""Test harness for applications built on the prototype broker.

Building an in-memory broker network takes a dozen lines of boilerplate
(topology, config, transport, nodes, start, dial, pump); this module rolls
it into one object so application tests — and this repository's own
examples — can focus on behaviour::

    with InMemoryBrokerHarness.for_chain(3, schema) as harness:
        alice = harness.attach("c.B0")
        pub = harness.attach("P1")
        alice.subscribe_and_wait("a1=1")
        harness.settle()
        pub.publish({"a1": 1, "a2": 0})
        harness.settle()
        assert len(alice.received_events) == 1

The harness owns the hub, so ``settle()`` (pump until quiescent) is the only
synchronization primitive a test needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.broker.client import BrokerClient, EventHandler
from repro.broker.node import BrokerNetworkConfig, BrokerNode
from repro.broker.transport import InMemoryTransport
from repro.errors import TopologyError
from repro.matching.schema import EventSchema
from repro.network.figures import linear_chain, star
from repro.network.topology import Topology


class InMemoryBrokerHarness:
    """A running in-memory broker network plus client factory.

    Parameters mirror :class:`~repro.broker.node.BrokerNetworkConfig`; the
    harness starts every broker, wires neighbor connections, and pumps the
    hub to quiescence.  Use as a context manager to guarantee shutdown.
    """

    def __init__(
        self,
        topology: Topology,
        schema: EventSchema,
        *,
        domains=None,
        factoring_attributes=None,
        log_directory: Optional[str] = None,
    ) -> None:
        self.topology = topology
        self.schema = schema
        self.config = BrokerNetworkConfig(
            topology,
            schema,
            domains=domains,
            factoring_attributes=factoring_attributes,
        )
        self.transport = InMemoryTransport()
        self.endpoints: Dict[str, str] = {
            broker: f"mem://{broker}" for broker in topology.brokers()
        }
        self.nodes: Dict[str, BrokerNode] = {
            broker: BrokerNode(
                self.config,
                broker,
                self.transport,
                self.endpoints,
                log_directory=log_directory,
            )
            for broker in topology.brokers()
        }
        self.clients: List[BrokerClient] = []
        for node in self.nodes.values():
            node.start()
        for node in self.nodes.values():
            node.connect_neighbors()
        self.settle()

    # ------------------------------------------------------------------
    # Convenience constructors

    @classmethod
    def for_chain(cls, num_brokers: int, schema: EventSchema, **kwargs) -> "InMemoryBrokerHarness":
        """A chain ``B0 - .. - Bn-1`` with one subscriber per broker and a
        publisher ``P1`` on ``B0`` (see :func:`repro.network.linear_chain`)."""
        return cls(linear_chain(num_brokers, subscribers_per_broker=1), schema, **kwargs)

    @classmethod
    def for_star(cls, num_edges: int, schema: EventSchema, **kwargs) -> "InMemoryBrokerHarness":
        """A hub-and-spoke network with a publisher on the hub."""
        return cls(star(num_edges, subscribers_per_broker=1), schema, **kwargs)

    # ------------------------------------------------------------------

    def settle(self, max_rounds: int = 100) -> int:
        """Pump the hub until no messages remain; returns messages delivered."""
        delivered = 0
        for _ in range(max_rounds):
            moved = self.transport.pump()
            delivered += moved
            if moved == 0 and self.transport.hub.pending == 0:
                return delivered
        raise TopologyError(
            f"network did not quiesce within {max_rounds} pump rounds "
            "(a message loop?)"
        )

    def attach(
        self,
        client_name: str,
        *,
        on_event: Optional[EventHandler] = None,
        auto_ack: bool = True,
    ) -> BrokerClient:
        """Connect a declared client to its home broker; returns the client."""
        broker = self.topology.broker_of(client_name)
        client = BrokerClient(
            client_name,
            self.schema,
            self.transport,
            self.endpoints[broker],
            on_event=on_event,
            auto_ack=auto_ack,
            pump=self.transport.pump,
        )
        client.connect()
        self.settle()
        self.clients.append(client)
        return client

    def node(self, broker: str) -> BrokerNode:
        return self.nodes[broker]

    def restart_broker(self, broker: str, *, log_directory: Optional[str] = None) -> BrokerNode:
        """Stop a broker and bring up a fresh node in its place.

        Neighbors re-dial automatically (triggering the hello resync), and
        the new node replaces the old in :attr:`nodes`.
        """
        self.nodes[broker].stop()
        self.settle()
        replacement = BrokerNode(
            self.config,
            broker,
            InMemoryTransport(self.transport.hub),
            self.endpoints,
            log_directory=log_directory,
        )
        replacement.start()
        self.nodes[broker] = replacement
        for neighbor in self.topology.broker_neighbors(broker):
            self.nodes[neighbor].dial_broker(broker)
        replacement.connect_neighbors()
        self.settle()
        return replacement

    def shutdown(self) -> None:
        for client in self.clients:
            if client.is_connected:
                client.disconnect()
        self.settle()
        for node in self.nodes.values():
            node.stop()
        self.settle()

    def __enter__(self) -> "InMemoryBrokerHarness":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (
            f"InMemoryBrokerHarness({len(self.nodes)} brokers, "
            f"{len(self.clients)} clients attached)"
        )
