"""The flooding baseline.

"The message is broadcast or flooded to all destinations using standard
multicast technology and unwanted messages are filtered out at these
destinations."

Every broker forwards every event to all of its spanning-tree children,
unconditionally.  What happens at the edge is a policy knob:

* ``filter_at_edge=False`` (the paper's pure flooding): the broker sends the
  event to *every* attached client and clients filter for themselves.  The
  broker pays a send per client; ``matched_deliveries`` records which clients
  actually wanted the event so metrics can count useful vs wasted traffic.
* ``filter_at_edge=True``: the broker matches the event against its *local*
  clients' subscriptions and sends only to the matching ones (a stronger
  baseline; still floods every broker).

Either way, every broker in the network processes every event — which is
exactly why flooding saturates first in Chart 1.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.matching.base import MatcherEngine
from repro.matching.pst import MatchResult
from repro.matching.engines import create_engine
from repro.obs import get_registry
from repro.protocols.base import Decision, ProtocolContext, RoutingProtocol, SimMessage


class FloodingProtocol(RoutingProtocol):
    """Flood the spanning tree; filter at the edge or at the clients."""

    name = "flooding"
    supports_faults = True

    def __init__(self, context: ProtocolContext, *, filter_at_edge: bool = False) -> None:
        super().__init__(context)
        self.filter_at_edge = filter_at_edge
        obs = get_registry().scope("protocol.flooding")
        self._obs_handled = obs.counter("events_handled")
        self._obs_deliveries = obs.counter("deliveries")
        self._obs_wasted = obs.counter("wasted_deliveries")
        # Per-broker matcher over the subscriptions of *locally attached*
        # clients only: flooding needs no global knowledge, that is its one
        # virtue.
        self._local_trees: Dict[str, MatcherEngine] = {}
        topology = context.topology
        for broker in topology.brokers():
            self._local_trees[broker] = self._make_local_tree()
        self._subscriber_names = frozenset(topology.subscribers())
        client_broker = {client: topology.broker_of(client) for client in topology.clients()}
        for subscription in context.subscriptions:
            broker = client_broker.get(subscription.subscriber)
            if broker is None:
                continue
            self._local_trees[broker].insert(subscription)

    def _make_local_tree(self) -> MatcherEngine:
        context = self.context
        return create_engine(
            context.engine,
            context.schema,
            attribute_order=context.attribute_order,
            domains=context.domains,
            shards=context.shards,
            shard_policy=context.shard_policy,
            shard_workers=context.shard_workers,
            backend=context.backend,
            aggregate=context.aggregate,
        )

    def on_topology_repaired(self, repair) -> List[str]:
        """Flooding reads the (already repaired) trees directly; only a
        joined broker needs fresh local state."""
        for broker in repair.joined_brokers:
            self._local_trees[broker] = self._make_local_tree()
        self._subscriber_names = frozenset(self.context.topology.subscribers())
        return []

    def add_subscription(self, subscription) -> None:
        """Flooding filters locally, so only the subscriber's broker cares."""
        broker = self.context.topology.broker_of(subscription.subscriber)
        self._local_trees[broker].insert(subscription)

    def handle(self, broker: str, message: SimMessage) -> Decision:
        local = self._local_trees[broker].match(message.event)
        return self._decision_for(broker, message, local)

    def handle_batch(self, broker: str, messages: Sequence[SimMessage]) -> List[Decision]:
        """Flooding's batch path: one local ``match_batch`` for the lot."""
        if not messages:
            return []
        locals_ = self._local_trees[broker].match_batch(
            [message.event for message in messages]
        )
        return [
            self._decision_for(broker, message, local)
            for message, local in zip(messages, locals_)
        ]

    def _decision_for(
        self, broker: str, message: SimMessage, local: MatchResult
    ) -> Decision:
        children = self.context.tree_children(broker, message.root)
        sends = [(child, message.forwarded()) for child in children]
        matched_clients = sorted(local.subscribers)
        if self.filter_at_edge:
            deliveries = matched_clients
            steps = local.steps
        else:
            # Pure flooding: the broker sends to every subscriber client and
            # the clients filter for themselves, so the broker is charged no
            # matching steps (the local match above is only bookkeeping for
            # the useful-traffic metrics).
            topology = self.context.topology
            deliveries = [
                client
                for client in topology.clients_of(broker)
                if client in self._subscriber_names
            ]
            steps = 0
        self._obs_handled.inc()
        self._obs_deliveries.inc(len(deliveries))
        self._obs_wasted.inc(len(deliveries) - len(matched_clients))
        return Decision(
            sends=sends,
            deliveries=deliveries,
            matched_deliveries=matched_clients,
            matching_steps=steps,
        )
