"""Link matching as a simulator protocol.

This is a thin adapter: the real work lives in
:class:`repro.core.router.ContentRouter` (annotation + mask refinement).
Every broker holds a router over the full replicated subscription set; the
decision for a message is the router's route decision for the message's
spanning tree.
"""

from __future__ import annotations

from typing import Dict

from repro.core.router import ContentRouter
from repro.obs import get_registry
from repro.protocols.base import Decision, ProtocolContext, RoutingProtocol, SimMessage


class LinkMatchingProtocol(RoutingProtocol):
    """The paper's protocol: hop-by-hop partial matching."""

    name = "link-matching"

    def __init__(self, context: ProtocolContext) -> None:
        super().__init__(context)
        registry = get_registry()
        self._obs = registry.scope("protocol.link_matching")
        self._obs_handled = self._obs.counter("events_handled")
        self.routers: Dict[str, ContentRouter] = {}
        for broker in context.topology.brokers():
            router = ContentRouter(
                context.topology,
                broker,
                context.routing_tables[broker],
                context.spanning_trees,
                context.schema,
                attribute_order=context.attribute_order,
                domains=context.domains,
                factoring_attributes=context.factoring_attributes,
                engine=context.engine,
            )
            for subscription in context.subscriptions:
                router.add_subscription(subscription)
            self.routers[broker] = router

    def handle(self, broker: str, message: SimMessage) -> Decision:
        decision = self.routers[broker].route(message.event, message.root)
        self._obs_handled.inc()
        # Per-hop refinement accounting (Chart 2's quantity, as seen by the
        # simulator): one labeled counter per hop distance is a single dict
        # lookup, bounded by the network diameter.
        hop = str(message.hop)
        self._obs.counter("refinement_steps", hop=hop).inc(decision.steps)
        self._obs.counter("deliveries", hop=hop).inc(len(decision.deliver_to))
        return Decision(
            sends=[(neighbor, message.forwarded()) for neighbor in decision.forward_to],
            deliveries=list(decision.deliver_to),
            matching_steps=decision.steps,
        )
