"""Link matching as a simulator protocol.

This is a thin adapter: the real work lives in
:class:`repro.core.router.ContentRouter` (annotation + mask refinement).
Every broker holds a router over the full replicated subscription set; the
decision for a message is the router's route decision for the message's
spanning tree.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.router import ContentRouter, RouteDecision
from repro.obs import get_registry
from repro.protocols.base import Decision, ProtocolContext, RoutingProtocol, SimMessage


class LinkMatchingProtocol(RoutingProtocol):
    """The paper's protocol: hop-by-hop partial matching."""

    name = "link-matching"

    def __init__(self, context: ProtocolContext) -> None:
        super().__init__(context)
        registry = get_registry()
        self._obs = registry.scope("protocol.link_matching")
        self._obs_handled = self._obs.counter("events_handled")
        self.routers: Dict[str, ContentRouter] = {}
        for broker in context.topology.brokers():
            router = ContentRouter(
                context.topology,
                broker,
                context.routing_tables[broker],
                context.spanning_trees,
                context.schema,
                attribute_order=context.attribute_order,
                domains=context.domains,
                factoring_attributes=context.factoring_attributes,
                engine=context.engine,
                shards=context.shards,
                shard_policy=context.shard_policy,
                shard_workers=context.shard_workers,
                backend=context.backend,
            )
            for subscription in context.subscriptions:
                router.add_subscription(subscription)
            self.routers[broker] = router

    def handle(self, broker: str, message: SimMessage) -> Decision:
        routed = self.routers[broker].route(message.event, message.root)
        return self._decision_for(message, routed)

    def handle_batch(self, broker: str, messages: Sequence[SimMessage]) -> List[Decision]:
        """Route a batch through the broker's router in one call.

        Messages are grouped by spanning-tree root (the initialization mask
        depends on it); each group goes through
        :meth:`ContentRouter.route_batch`, which deduplicates by projection
        and hits the engine's link cache.
        """
        if not messages:
            return []
        router = self.routers[broker]
        decisions: List[Decision] = [None] * len(messages)  # type: ignore[list-item]
        by_root: Dict[str, List[int]] = {}
        for i, message in enumerate(messages):
            group = by_root.get(message.root)
            if group is None:
                by_root[message.root] = [i]
            else:
                group.append(i)
        for root, indices in by_root.items():
            routed = router.route_batch([messages[i].event for i in indices], root)
            for i, route_decision in zip(indices, routed):
                decisions[i] = self._decision_for(messages[i], route_decision)
        return decisions

    def _decision_for(self, message: SimMessage, decision: RouteDecision) -> Decision:
        self._obs_handled.inc()
        # Per-hop refinement accounting (Chart 2's quantity, as seen by the
        # simulator): one labeled counter per hop distance is a single dict
        # lookup, bounded by the network diameter.
        hop = str(message.hop)
        self._obs.counter("refinement_steps", hop=hop).inc(decision.steps)
        self._obs.counter("deliveries", hop=hop).inc(len(decision.deliver_to))
        return Decision(
            sends=[(neighbor, message.forwarded()) for neighbor in decision.forward_to],
            deliveries=list(decision.deliver_to),
            matching_steps=decision.steps,
        )
