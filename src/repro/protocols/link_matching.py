"""Link matching as a simulator protocol.

This is a thin adapter: the real work lives in
:class:`repro.core.router.ContentRouter` (annotation + mask refinement).
Every broker holds a router over the full replicated subscription set; the
decision for a message is the router's route decision for the message's
spanning tree.

Resilience (see :mod:`repro.sim.faults` and ``docs/resilience.md``):

* After a topology repair, :meth:`on_topology_repaired` rebuilds each
  affected broker's virtual-link table and rebinds its engine — flushing the
  annotation and every link cache keyed on the old positions.  Unaffected
  brokers keep their warm caches.
* While a broker is marked *stale* (structure repaired, annotations not yet
  rebuilt) it degrades to **flood fallback**: forward to every live
  spanning-tree child and deliver to locally matching subscribers.  Tree
  flooding preserves the ≤1-copy-per-link invariant and loses nothing; it
  merely wastes bandwidth until the annotations catch up.
* Messages carrying a ``replay_for`` restriction (replayed after a failure)
  are routed against a mask narrowed to the failed element's
  responsibilities, so subtrees that already received the event are not
  traversed again.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.core.router import ContentRouter, RouteDecision
from repro.errors import RoutingError
from repro.matching.predicates import Subscription
from repro.obs import get_registry
from repro.protocols.base import (
    Decision,
    ProtocolContext,
    RoutingProtocol,
    SimMessage,
    TopologyRepair,
)


class LinkMatchingProtocol(RoutingProtocol):
    """The paper's protocol: hop-by-hop partial matching."""

    name = "link-matching"
    supports_faults = True

    def __init__(self, context: ProtocolContext) -> None:
        super().__init__(context)
        registry = get_registry()
        self._obs = registry.scope("protocol.link_matching")
        self._obs_handled = self._obs.counter("events_handled")
        self._obs_flood_fallbacks = self._obs.counter("flood_fallbacks")
        self._obs_replays_routed = self._obs.counter("replays_routed")
        self._obs_link_rebuilds = self._obs.counter("link_table_rebuilds")
        self._subscriptions: List[Subscription] = list(context.subscriptions)
        self._stale: Set[str] = set()
        # Subscriptions a router could not index yet (subscriber cut off at
        # build time); retried after every repair.
        self._deferred: Dict[str, List[Subscription]] = {}
        self.routers: Dict[str, ContentRouter] = {}
        for broker in context.topology.brokers():
            self.routers[broker] = self._build_router(broker)

    def _build_router(self, broker: str) -> ContentRouter:
        context = self.context
        router = ContentRouter(
            context.topology,
            broker,
            context.routing_tables[broker],
            context.spanning_trees,
            context.schema,
            attribute_order=context.attribute_order,
            domains=context.domains,
            factoring_attributes=context.factoring_attributes,
            engine=context.engine,
            shards=context.shards,
            shard_policy=context.shard_policy,
            shard_workers=context.shard_workers,
            backend=context.backend,
            aggregate=context.aggregate,
        )
        for subscription in self._subscriptions:
            try:
                router.add_subscription(subscription)
            except RoutingError:
                # A subscriber currently cut off owns no virtual link at this
                # broker; retried after the repair that reattaches it.
                self._deferred.setdefault(broker, []).append(subscription)
        return router

    # ------------------------------------------------------------------
    # Fault hooks

    def on_topology_repaired(self, repair: TopologyRepair) -> List[str]:
        """Rebuild virtual-link tables for affected brokers only.

        Returns the brokers whose layout actually changed (engine rebound,
        caches flushed) — the fault coordinator holds those in a stale
        window with flood fallback until their annotations are rebuilt.
        """
        context = self.context
        for broker in repair.joined_brokers:
            self.routers[broker] = self._build_router(broker)
        if not repair.changed:
            return list(repair.joined_brokers)
        changed_brokers: List[str] = list(repair.joined_brokers)
        touched = set(repair.routing_changes)
        if repair.tree_changes:
            # A tree change can move downstream signatures at any broker.
            touched.update(self.routers)
        for broker in sorted(touched):
            if broker in repair.joined_brokers:
                continue
            router = self.routers.get(broker)
            if router is None:
                continue
            if router.rebuild_links(
                context.routing_tables[broker], context.spanning_trees
            ):
                self._obs_link_rebuilds.inc()
                changed_brokers.append(broker)
        # Subscriptions whose subscribers were cut off when a router was
        # built become indexable once the repair reattaches them.
        for broker, pending in list(self._deferred.items()):
            router = self.routers.get(broker)
            if router is None:
                del self._deferred[broker]
                continue
            still_deferred: List[Subscription] = []
            for subscription in pending:
                try:
                    router.add_subscription(subscription)
                except RoutingError:
                    still_deferred.append(subscription)
            if still_deferred:
                self._deferred[broker] = still_deferred
            else:
                del self._deferred[broker]
        return changed_brokers

    def set_stale(self, broker: str, stale: bool) -> None:
        if stale:
            self._stale.add(broker)
        else:
            self._stale.discard(broker)

    def add_subscription(self, subscription: Subscription) -> None:
        """Insert a subscription into every broker's router at runtime."""
        self._subscriptions.append(subscription)
        for broker, router in self.routers.items():
            try:
                router.add_subscription(subscription)
            except RoutingError:
                self._deferred.setdefault(broker, []).append(subscription)

    # ------------------------------------------------------------------
    # Decisions

    def handle(self, broker: str, message: SimMessage) -> Decision:
        if broker in self._stale:
            return self._flood_decision(broker, message)
        router = self.routers[broker]
        if message.replay_for is not None:
            self._obs_replays_routed.inc()
            routed = router.route(
                message.event, message.root, restrict_to=message.replay_for
            )
        else:
            routed = router.route(message.event, message.root)
        return self._decision_for(message, routed)

    def handle_batch(self, broker: str, messages: Sequence[SimMessage]) -> List[Decision]:
        """Route a batch through the broker's router in one call.

        Messages are grouped by spanning-tree root (the initialization mask
        depends on it); each group goes through
        :meth:`ContentRouter.route_batch`, which deduplicates by projection
        and hits the engine's link cache.  Stale-broker and replay messages
        take the single-message path (their masks are not the group's).
        """
        if not messages:
            return []
        router = self.routers[broker]
        decisions: List[Decision] = [None] * len(messages)  # type: ignore[list-item]
        by_root: Dict[str, List[int]] = {}
        for i, message in enumerate(messages):
            if broker in self._stale or message.replay_for is not None:
                decisions[i] = self.handle(broker, message)
                continue
            group = by_root.get(message.root)
            if group is None:
                by_root[message.root] = [i]
            else:
                group.append(i)
        for root, indices in by_root.items():
            routed = router.route_batch([messages[i].event for i in indices], root)
            for i, route_decision in zip(indices, routed):
                decisions[i] = self._decision_for(messages[i], route_decision)
        return decisions

    def _flood_decision(self, broker: str, message: SimMessage) -> Decision:
        """Graceful degradation while annotations are stale: flood the
        (already repaired) spanning tree and match only for local delivery.

        Tree flooding keeps ≤1 copy per link and reaches every live
        subscriber, so correctness is preserved; only bandwidth is wasted.
        """
        self._obs_handled.inc()
        self._obs_flood_fallbacks.inc()
        router = self.routers[broker]
        local = router.match_locally(message.event)
        local_clients = set(self.context.topology.clients_of(broker))
        deliveries = sorted(
            subscriber
            for subscriber in local.subscribers
            if subscriber in local_clients
            and (message.replay_for is None or subscriber in message.replay_for)
        )
        children = self.context.tree_children(broker, message.root)
        return Decision(
            sends=[(child, message.forwarded()) for child in children],
            deliveries=deliveries,
            matching_steps=local.steps,
        )

    def _decision_for(self, message: SimMessage, decision: RouteDecision) -> Decision:
        self._obs_handled.inc()
        # Per-hop refinement accounting (Chart 2's quantity, as seen by the
        # simulator): one labeled counter per hop distance is a single dict
        # lookup, bounded by the network diameter.
        hop = str(message.hop)
        self._obs.counter("refinement_steps", hop=hop).inc(decision.steps)
        self._obs.counter("deliveries", hop=hop).inc(len(decision.deliver_to))
        return Decision(
            sends=[(neighbor, message.forwarded()) for neighbor in decision.forward_to],
            deliveries=list(decision.deliver_to),
            matching_steps=decision.steps,
        )
