"""Link matching as a simulator protocol.

This is a thin adapter: the real work lives in
:class:`repro.core.router.ContentRouter` (annotation + mask refinement).
Every broker holds a router over the full replicated subscription set; the
decision for a message is the router's route decision for the message's
spanning tree.

Resilience (see :mod:`repro.sim.faults` and ``docs/resilience.md``):

* After a topology repair, :meth:`on_topology_repaired` rebuilds each
  affected broker's virtual-link table and rebinds its engine — flushing the
  annotation and every link cache keyed on the old positions.  Unaffected
  brokers keep their warm caches.
* While a broker is marked *stale* (structure repaired, annotations not yet
  rebuilt) it degrades to **flood fallback**: forward to every live
  spanning-tree child and deliver to locally matching subscribers.  Tree
  flooding preserves the ≤1-copy-per-link invariant and loses nothing; it
  merely wastes bandwidth until the annotations catch up.
* Messages carrying a ``replay_for`` restriction (replayed after a failure)
  are routed against a mask narrowed to the failed element's
  responsibilities, so subtrees that already received the event are not
  traversed again.

Match-once forwarding (see ``docs/performance.md``): because every broker
holds the same replicated subscription set, the matched-subscription set of
an event is hop-invariant.  The publisher's broker therefore matches once,
attaches an epoch-tagged :class:`~repro.matching.digest.MatchDigest` to the
in-flight message, and every downstream broker converts the digest straight
into its own link mask (one OR per matched leaf) instead of re-running the
refinement kernel.  Any condition under which the digest cannot be trusted
— epoch/checksum mismatch after churn, a broker holding deferred
subscriptions, the stale flood-fallback window, ``replay_for``-restricted
messages — falls back to full matching, so the fault suite's
zero-loss/≤1-copy invariants hold unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.core.router import ContentRouter, RouteDecision
from repro.errors import RoutingError
from repro.matching.predicates import Subscription
from repro.obs import get_registry
from repro.protocols.base import (
    Decision,
    ProtocolContext,
    RoutingProtocol,
    SimMessage,
    TopologyRepair,
)

#: Sentinel for :meth:`LinkMatchingProtocol._decision_for`'s ``digest``
#: parameter: "keep whatever the incoming message carried".
_INHERIT = object()


class LinkMatchingProtocol(RoutingProtocol):
    """The paper's protocol: hop-by-hop partial matching."""

    name = "link-matching"
    supports_faults = True

    def __init__(self, context: ProtocolContext, *, use_digests: bool = True) -> None:
        super().__init__(context)
        registry = get_registry()
        self._obs = registry.scope("protocol.link_matching")
        self._obs_handled = self._obs.counter("events_handled")
        self._obs_flood_fallbacks = self._obs.counter("flood_fallbacks")
        self._obs_replays_routed = self._obs.counter("replays_routed")
        self._obs_link_rebuilds = self._obs.counter("link_table_rebuilds")
        self._obs_digest_hits = self._obs.counter("digest_hits")
        self._obs_digest_fallbacks = self._obs.counter("digest_fallbacks")
        self._obs_digests_minted = self._obs.counter("digests_minted")
        #: Match-once forwarding toggle; ``False`` restores classic per-hop
        #: rematching everywhere (the benchmark baseline).
        self.use_digests = use_digests
        self._subscriptions: List[Subscription] = list(context.subscriptions)
        self._stale: Set[str] = set()
        # Subscriptions a router could not index yet (subscriber cut off at
        # build time); retried after every repair.
        self._deferred: Dict[str, List[Subscription]] = {}
        self.routers: Dict[str, ContentRouter] = {}
        for broker in context.topology.brokers():
            self.routers[broker] = self._build_router(broker)
        # Routers with deferred subscriptions bumped their epoch fewer times
        # during the build; align the counters (the per-broker deferred check
        # guards the actual set divergence).
        self._sync_epochs(bump=False)

    def _build_router(self, broker: str) -> ContentRouter:
        context = self.context
        router = ContentRouter(
            context.topology,
            broker,
            context.routing_tables[broker],
            context.spanning_trees,
            context.schema,
            attribute_order=context.attribute_order,
            domains=context.domains,
            factoring_attributes=context.factoring_attributes,
            engine=context.engine,
            shards=context.shards,
            shard_policy=context.shard_policy,
            shard_workers=context.shard_workers,
            backend=context.backend,
            aggregate=context.aggregate,
        )
        for subscription in self._subscriptions:
            try:
                router.add_subscription(subscription)
            except RoutingError:
                # A subscriber currently cut off owns no virtual link at this
                # broker; retried after the repair that reattaches it.
                self._deferred.setdefault(broker, []).append(subscription)
        return router

    # ------------------------------------------------------------------
    # Fault hooks

    def on_topology_repaired(self, repair: TopologyRepair) -> List[str]:
        """Rebuild virtual-link tables for affected brokers only.

        Returns the brokers whose layout actually changed (engine rebound,
        caches flushed) — the fault coordinator holds those in a stale
        window with flood fallback until their annotations are rebuilt.
        """
        context = self.context
        for broker in repair.joined_brokers:
            self.routers[broker] = self._build_router(broker)
        if not repair.changed:
            return list(repair.joined_brokers)
        changed_brokers: List[str] = list(repair.joined_brokers)
        touched = set(repair.routing_changes)
        if repair.tree_changes:
            # A tree change can move downstream signatures at any broker.
            touched.update(self.routers)
        for broker in sorted(touched):
            if broker in repair.joined_brokers:
                continue
            router = self.routers.get(broker)
            if router is None:
                continue
            if router.rebuild_links(
                context.routing_tables[broker], context.spanning_trees
            ):
                self._obs_link_rebuilds.inc()
                changed_brokers.append(broker)
        # Subscriptions whose subscribers were cut off when a router was
        # built become indexable once the repair reattaches them.
        for broker, pending in list(self._deferred.items()):
            router = self.routers.get(broker)
            if router is None:
                del self._deferred[broker]
                continue
            still_deferred: List[Subscription] = []
            for subscription in pending:
                try:
                    router.add_subscription(subscription)
                except RoutingError:
                    still_deferred.append(subscription)
            if still_deferred:
                self._deferred[broker] = still_deferred
            else:
                del self._deferred[broker]
        # Rebuilds and deferred retries moved individual routers' epochs by
        # different amounts; re-align past every in-flight digest so a
        # pre-repair digest can never be mistaken for current.
        self._sync_epochs(bump=True)
        return changed_brokers

    def _sync_epochs(self, *, bump: bool) -> None:
        """Bring every router's subscription-set epoch to one common value
        (the brokers hold replicas of one set); with ``bump``, move strictly
        past every existing value so older digests are invalidated."""
        if not self.routers:
            return
        epoch = max(router.subscription_epoch for router in self.routers.values())
        if bump:
            epoch += 1
        for router in self.routers.values():
            router.sync_epoch(epoch)

    def set_stale(self, broker: str, stale: bool) -> None:
        if stale:
            self._stale.add(broker)
        else:
            self._stale.discard(broker)

    def add_subscription(self, subscription: Subscription) -> None:
        """Insert a subscription into every broker's router at runtime."""
        self._subscriptions.append(subscription)
        for broker, router in self.routers.items():
            try:
                router.add_subscription(subscription)
            except RoutingError:
                self._deferred.setdefault(broker, []).append(subscription)
        # Deferred routers didn't bump; keep the counters in lockstep (their
        # set divergence is caught by the deferred check and the digest
        # checksum, not the counter).
        self._sync_epochs(bump=False)

    # ------------------------------------------------------------------
    # Decisions

    def _can_mint(self, broker: str, router: ContentRouter) -> bool:
        """Whether ``broker`` may mint a digest for a digest-less message:
        digests enabled, an engine-backed (non-factored) router, and no
        deferred subscriptions (a deferred broker's set is smaller than its
        peers', so a digest minted here would under-deliver downstream)."""
        return (
            self.use_digests
            and router.supports_digests
            and broker not in self._deferred
        )

    def _consume_digest(
        self, broker: str, router: ContentRouter, message: SimMessage
    ) -> Decision:
        """Turn an in-flight digest into this broker's decision, falling
        back to full matching whenever the digest cannot be trusted here
        (epoch/checksum mismatch, deferred-subscription divergence, unknown
        ids).  The fallback decision strips the digest from its forwards —
        downstream brokers share this broker's epoch after a protocol-level
        sync, so re-verifying a digest this broker rejected would fail
        there too."""
        assert message.digest is not None
        if broker not in self._deferred:
            try:
                routed = router.route_with_digest(
                    message.event, message.root, message.digest
                )
            except RoutingError:
                pass
            else:
                self._obs_digest_hits.inc()
                return self._decision_for(message, routed)
        self._obs_digest_fallbacks.inc()
        routed = router.route(message.event, message.root)
        return self._decision_for(message, routed, digest=None)

    def handle(self, broker: str, message: SimMessage) -> Decision:
        if broker in self._stale:
            return self._flood_decision(broker, message)
        router = self.routers[broker]
        if message.replay_for is not None:
            # Replays route against a restricted mask; a digest projects the
            # *unrestricted* matched set, so the replay path always rematches.
            self._obs_replays_routed.inc()
            routed = router.route(
                message.event, message.root, restrict_to=message.replay_for
            )
            # Strip any digest: every downstream hop of a replay rematches
            # anyway (replay_for rides along), so carrying it is dead weight.
            return self._decision_for(message, routed, digest=None)
        if message.digest is not None and self.use_digests:
            return self._consume_digest(broker, router, message)
        if self._can_mint(broker, router):
            routed, digest = router.route_digest(message.event, message.root)
            if digest is not None:
                self._obs_digests_minted.inc()
            return self._decision_for(message, routed, digest=digest)
        routed = router.route(message.event, message.root)
        return self._decision_for(message, routed)

    def handle_batch(self, broker: str, messages: Sequence[SimMessage]) -> List[Decision]:
        """Route a batch through the broker's router in one call.

        A stale broker floods the whole batch through one grouped pass (one
        ``match_locally_batch`` call — the stale window exists for exactly
        the load spikes where per-message round-trips hurt).  Otherwise
        messages are grouped by spanning-tree root (the initialization mask
        depends on it): digest-bearing messages are converted per message
        (a handful of mask ORs each), digest-less ones go through the
        minting batch path or :meth:`ContentRouter.route_batch`, both of
        which deduplicate by projection and hit the engine's caches.
        Replay messages take the single-message path (their masks are not
        the group's).
        """
        if not messages:
            return []
        if broker in self._stale:
            return self._flood_decision_batch(broker, messages)
        router = self.routers[broker]
        decisions: List[Decision] = [None] * len(messages)  # type: ignore[list-item]
        can_mint = self._can_mint(broker, router)
        by_root: Dict[str, List[int]] = {}
        for i, message in enumerate(messages):
            if message.replay_for is not None:
                decisions[i] = self.handle(broker, message)
            elif message.digest is not None and self.use_digests:
                decisions[i] = self._consume_digest(broker, router, message)
            else:
                group = by_root.get(message.root)
                if group is None:
                    by_root[message.root] = [i]
                else:
                    group.append(i)
        for root, indices in by_root.items():
            events = [messages[i].event for i in indices]
            if can_mint:
                for i, (route_decision, digest) in zip(
                    indices, router.route_digest_batch(events, root)
                ):
                    if digest is not None:
                        self._obs_digests_minted.inc()
                    decisions[i] = self._decision_for(
                        messages[i], route_decision, digest=digest
                    )
            else:
                for i, route_decision in zip(indices, router.route_batch(events, root)):
                    decisions[i] = self._decision_for(messages[i], route_decision)
        return decisions

    def _flood_decision(self, broker: str, message: SimMessage) -> Decision:
        """Graceful degradation while annotations are stale: flood the
        (already repaired) spanning tree and match only for local delivery.

        Tree flooding keeps ≤1 copy per link and reaches every live
        subscriber, so correctness is preserved; only bandwidth is wasted.
        """
        self._obs_handled.inc()
        self._obs_flood_fallbacks.inc()
        router = self.routers[broker]
        local = router.match_locally(message.event)
        local_clients = set(self.context.topology.clients_of(broker))
        deliveries = sorted(
            subscriber
            for subscriber in local.subscribers
            if subscriber in local_clients
            and (message.replay_for is None or subscriber in message.replay_for)
        )
        children = self.context.tree_children(broker, message.root)
        return Decision(
            sends=[(child, message.forwarded()) for child in children],
            deliveries=deliveries,
            matching_steps=local.steps,
        )

    def _flood_decision_batch(
        self, broker: str, messages: Sequence[SimMessage]
    ) -> List[Decision]:
        """Batched flood fallback: one ``match_locally_batch`` pass for the
        whole stale-window batch instead of a per-message round-trip through
        :meth:`_flood_decision` — the stale window coincides with exactly
        the repair-induced load spikes where batching matters.  Decision
        ``i`` equals ``_flood_decision(broker, messages[i])``: tree children
        are cached per spanning-tree root, and a per-message ``replay_for``
        restriction still narrows that message's deliveries.
        """
        router = self.routers[broker]
        self._obs_handled.inc(len(messages))
        self._obs_flood_fallbacks.inc(len(messages))
        local_clients = set(self.context.topology.clients_of(broker))
        locals_ = router.match_locally_batch([m.event for m in messages])
        children_of_root: Dict[str, List[str]] = {}
        decisions: List[Decision] = []
        for message, local in zip(messages, locals_):
            deliveries = sorted(
                subscriber
                for subscriber in local.subscribers
                if subscriber in local_clients
                and (message.replay_for is None or subscriber in message.replay_for)
            )
            children = children_of_root.get(message.root)
            if children is None:
                children = self.context.tree_children(broker, message.root)
                children_of_root[message.root] = children
            decisions.append(
                Decision(
                    sends=[(child, message.forwarded()) for child in children],
                    deliveries=deliveries,
                    matching_steps=local.steps,
                )
            )
        return decisions

    def _decision_for(
        self,
        message: SimMessage,
        decision: RouteDecision,
        digest: object = _INHERIT,
    ) -> Decision:
        """Translate a router decision into a protocol decision.

        ``digest`` controls what the forwarded copies carry: the default
        sentinel inherits the incoming message's digest (a consumed digest
        stays valid downstream — all brokers share the epoch), ``None``
        strips it (fallback paths), and a :class:`MatchDigest` attaches a
        freshly minted one.
        """
        self._obs_handled.inc()
        # Per-hop refinement accounting (Chart 2's quantity, as seen by the
        # simulator): one labeled counter per hop distance is a single dict
        # lookup, bounded by the network diameter.
        hop = str(message.hop)
        self._obs.counter("refinement_steps", hop=hop).inc(decision.steps)
        self._obs.counter("deliveries", hop=hop).inc(len(decision.deliver_to))
        sends = []
        for neighbor in decision.forward_to:
            forward = message.forwarded()
            if digest is not _INHERIT:
                forward.digest = digest  # type: ignore[assignment]
            sends.append((neighbor, forward))
        return Decision(
            sends=sends,
            deliveries=list(decision.deliver_to),
            matching_steps=decision.steps,
        )
