"""Multicast protocols over the broker network: the paper's link matching
and the two baselines it is evaluated against (flooding, match-first)."""

from repro.protocols.base import (
    Decision,
    ProtocolContext,
    RoutingProtocol,
    SimMessage,
)
from repro.protocols.flooding import FloodingProtocol
from repro.protocols.link_matching import LinkMatchingProtocol
from repro.protocols.match_first import MatchFirstProtocol

__all__ = [
    "Decision",
    "FloodingProtocol",
    "LinkMatchingProtocol",
    "MatchFirstProtocol",
    "ProtocolContext",
    "RoutingProtocol",
    "SimMessage",
]
