"""The match-first baseline (destination lists).

"In the match-first approach, the event is first matched against all
subscriptions, thus generating a destination list and the event is then
routed to all entries on this list."

The publishing broker performs a full match over the complete replicated
subscription set and attaches the resulting destination list to the message.
Downstream brokers do no matching: they split the carried list by their
routing tables' next hops and forward one copy per hop, delivering to
locally attached destinations.

The costs the paper calls out fall straight out of the model:

* the publishing broker pays the *entire* matching bill (Chart 2's
  "centralized" line is this broker's step count), and
* header size grows with the subscriber count — the simulator charges
  ``per_destination_entry_us`` at every hop for building, carrying and
  splitting the list, which is what makes the approach "impractical" at
  thousands of destinations.

Unlike flooding, a link carries at most one copy of an event here (the list
is split per next hop), so match-first is a fair second baseline.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.router import ContentRouter
from repro.errors import SimulationError
from repro.protocols.base import Decision, ProtocolContext, RoutingProtocol, SimMessage


class MatchFirstProtocol(RoutingProtocol):
    """Full match at the publisher's broker; destination-list routing after."""

    name = "match-first"

    def __init__(self, context: ProtocolContext) -> None:
        super().__init__(context)
        # Full matchers are only needed at brokers that host publishers.
        self._matchers: Dict[str, ContentRouter] = {}
        for root in context.spanning_trees:
            router = ContentRouter(
                context.topology,
                root,
                context.routing_tables[root],
                context.spanning_trees,
                context.schema,
                attribute_order=context.attribute_order,
                domains=context.domains,
                factoring_attributes=context.factoring_attributes,
                engine=context.engine,
                shards=context.shards,
                shard_policy=context.shard_policy,
                shard_workers=context.shard_workers,
                backend=context.backend,
                aggregate=context.aggregate,
            )
            for subscription in context.subscriptions:
                router.add_subscription(subscription)
            self._matchers[root] = router

    def handle(self, broker: str, message: SimMessage) -> Decision:
        if message.destinations is None:
            return self._handle_at_publisher(broker, message)
        return self._handle_downstream(broker, message)

    def _handle_at_publisher(self, broker: str, message: SimMessage) -> Decision:
        matcher = self._matchers.get(broker)
        if matcher is None:
            raise SimulationError(
                f"match-first message without destination list at non-publisher "
                f"broker {broker!r}"
            )
        result = matcher.match_locally(message.event)
        destinations = tuple(sorted(result.subscribers))
        split = self._split(broker, destinations)
        return self._decision_from_split(message, split, matching_steps=result.steps,
                                         destination_entries=len(destinations))

    def _handle_downstream(self, broker: str, message: SimMessage) -> Decision:
        assert message.destinations is not None
        split = self._split(broker, message.destinations)
        return self._decision_from_split(
            message, split, matching_steps=0, destination_entries=len(message.destinations)
        )

    def _split(self, broker: str, destinations: Tuple[str, ...]) -> Dict[str, List[str]]:
        """Partition a destination list by this broker's next hops."""
        topology = self.context.topology
        routing = self.context.routing_tables[broker]
        local = set(topology.clients_of(broker))
        split: Dict[str, List[str]] = {}
        for destination in destinations:
            hop = destination if destination in local else routing.next_hop(destination)
            split.setdefault(hop, []).append(destination)
        return split

    def _decision_from_split(
        self,
        message: SimMessage,
        split: Dict[str, List[str]],
        *,
        matching_steps: int,
        destination_entries: int,
    ) -> Decision:
        topology = self.context.topology
        sends: List[Tuple[str, SimMessage]] = []
        deliveries: List[str] = []
        for hop, group in sorted(split.items()):
            if topology.node(hop).kind.is_client:
                deliveries.append(hop)
            else:
                sends.append((hop, message.forwarded(destinations=tuple(group))))
        return Decision(
            sends=sends,
            deliveries=deliveries,
            matching_steps=matching_steps,
            destination_entries=destination_entries,
        )
