"""Protocol interface shared by link matching and the baselines.

A routing protocol answers one question, per broker, per message: *what does
this broker do with this message?*  The answer is a :class:`Decision`:
messages to send to neighbor brokers, clients to hand the event to, and the
work profile (matching steps, destination-list entries) the cost model
charges for.

The simulator (:mod:`repro.sim`) owns queues, service times and link
latencies; protocols are pure decision logic, so the same implementations
also back the untimed traces used in tests.
"""

from __future__ import annotations

import abc
import itertools
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.matching.digest import MatchDigest
from repro.matching.events import Event
from repro.matching.predicates import Subscription
from repro.matching.schema import AttributeValue, EventSchema
from repro.network.paths import RoutingTable, all_routing_tables
from repro.network.spanning import SpanningTree, spanning_trees_for_publishers
from repro.network.topology import Topology


class TopologyRepair:
    """What a :meth:`ProtocolContext.repair_topology` pass actually changed.

    ``tree_changes`` maps each spanning-tree root to the nodes whose tree
    position changed; ``routing_changes`` maps each broker to the
    destinations its routing table rerouted (or lost/gained);
    ``joined_brokers`` are brokers that appeared since the last repair.
    Protocols use this to rebuild only the per-broker state the repair can
    have invalidated.
    """

    __slots__ = ("tree_changes", "routing_changes", "joined_brokers")

    def __init__(
        self,
        tree_changes: Dict[str, FrozenSet[str]],
        routing_changes: Dict[str, FrozenSet[str]],
        joined_brokers: Tuple[str, ...],
    ) -> None:
        self.tree_changes = tree_changes
        self.routing_changes = routing_changes
        self.joined_brokers = joined_brokers

    @property
    def changed(self) -> bool:
        return bool(self.tree_changes or self.routing_changes or self.joined_brokers)

    def __repr__(self) -> str:
        return (
            f"TopologyRepair({len(self.tree_changes)} trees, "
            f"{len(self.routing_changes)} tables, "
            f"joined={list(self.joined_brokers)!r})"
        )

_message_ids = itertools.count(1)


class SimMessage:
    """A message in flight between brokers.

    ``root`` names the spanning tree the event travels on (the publisher's
    broker).  ``destinations`` is only used by the match-first baseline (the
    destination list carried in the header).  ``publish_time_ticks`` is
    stamped by the simulator for latency accounting.  ``replay_for`` marks a
    replayed copy of a message lost to a failure: the set of destinations the
    failed element was responsible for, which restricts routing at every hop
    so already-served subtrees are not traversed again (see
    :mod:`repro.sim.faults`).  ``digest`` is the optional match-once
    forwarding summary minted by the publisher's broker (see
    :class:`~repro.matching.digest.MatchDigest`); ``None`` means classic
    per-hop matching — fully backward compatible.
    """

    __slots__ = (
        "message_id",
        "event",
        "root",
        "destinations",
        "publish_time_ticks",
        "hop",
        "replay_for",
        "digest",
    )

    def __init__(
        self,
        event: Event,
        root: str,
        *,
        destinations: Optional[Tuple[str, ...]] = None,
        publish_time_ticks: int = 0,
        hop: int = 0,
        replay_for: Optional[FrozenSet[str]] = None,
        digest: Optional[MatchDigest] = None,
    ) -> None:
        self.message_id = next(_message_ids)
        self.event = event
        self.root = root
        self.destinations = destinations
        self.publish_time_ticks = publish_time_ticks
        self.hop = hop
        self.replay_for = replay_for
        self.digest = digest

    def forwarded(self, *, destinations: Optional[Tuple[str, ...]] = None) -> "SimMessage":
        """A copy to send one hop further (a replay restriction and any
        match digest ride along)."""
        return SimMessage(
            self.event,
            self.root,
            destinations=destinations if destinations is not None else self.destinations,
            publish_time_ticks=self.publish_time_ticks,
            hop=self.hop + 1,
            replay_for=self.replay_for,
            digest=self.digest,
        )

    @property
    def header_entries(self) -> int:
        """Destination-list length (0 when the protocol carries none)."""
        return len(self.destinations) if self.destinations is not None else 0

    #: Fixed framing + routing header cost, and per-value / per-destination
    #: wire sizes.  Rough but consistent across protocols, which is all the
    #: comparisons need.
    BASE_HEADER_BYTES = 24
    BYTES_PER_VALUE = 8
    BYTES_PER_DESTINATION = 12

    @property
    def wire_size_bytes(self) -> int:
        """Estimated on-the-wire size of this message.

        Match-first's destination lists show up here: its headers grow by
        :data:`BYTES_PER_DESTINATION` per carried destination, which is the
        cost the paper says "makes the approach impractical" at thousands of
        subscribers.
        """
        size = (
            self.BASE_HEADER_BYTES
            + self.BYTES_PER_VALUE * len(self.event.schema)
            + self.BYTES_PER_DESTINATION * self.header_entries
        )
        if self.digest is not None:
            # Match-once forwarding is not free on the wire: the digest's
            # encoded size (id list or dense bitmap, whichever is smaller)
            # is charged so bandwidth comparisons stay honest.
            size += self.digest.encoded_size_bytes
        return size

    def __repr__(self) -> str:
        return (
            f"SimMessage(#{self.message_id}, root={self.root!r}, hop={self.hop}, "
            f"header={self.header_entries})"
        )


class Decision:
    """A broker's answer for one message (see module docstring).

    ``deliveries`` are the clients the broker sends the event to;
    ``matched_deliveries`` the subset that actually subscribed to it (they
    differ only under pure flooding, where clients filter for themselves).
    """

    __slots__ = (
        "sends",
        "deliveries",
        "matched_deliveries",
        "matching_steps",
        "destination_entries",
    )

    def __init__(
        self,
        *,
        sends: Optional[List[Tuple[str, SimMessage]]] = None,
        deliveries: Optional[List[str]] = None,
        matched_deliveries: Optional[List[str]] = None,
        matching_steps: int = 0,
        destination_entries: int = 0,
    ) -> None:
        self.sends = sends if sends is not None else []
        self.deliveries = deliveries if deliveries is not None else []
        self.matched_deliveries = (
            matched_deliveries if matched_deliveries is not None else list(self.deliveries)
        )
        self.matching_steps = matching_steps
        self.destination_entries = destination_entries

    @property
    def send_count(self) -> int:
        return len(self.sends) + len(self.deliveries)

    def __repr__(self) -> str:
        return (
            f"Decision({len(self.sends)} forwards, {len(self.deliveries)} deliveries, "
            f"{self.matching_steps} steps)"
        )


class ProtocolContext:
    """Everything a protocol needs to build its per-broker state: the
    topology, the event schema, the global subscription set, spanning trees,
    routing tables, and the matcher configuration knobs (including which
    matching engine — ``"tree"`` or ``"compiled"`` — brokers use)."""

    def __init__(
        self,
        topology: Topology,
        schema: EventSchema,
        subscriptions: Sequence[Subscription],
        *,
        attribute_order: Optional[Sequence[str]] = None,
        domains: Optional[Mapping[str, Sequence[AttributeValue]]] = None,
        factoring_attributes: Optional[Sequence[str]] = None,
        engine: str = "compiled",
        shards: Optional[int] = None,
        shard_policy: Optional[str] = None,
        shard_workers: int = 0,
        backend: Optional[str] = None,
        aggregate: bool = False,
    ) -> None:
        topology.validate()
        self.topology = topology
        self.schema = schema
        self.subscriptions = list(subscriptions)
        self.attribute_order = attribute_order
        self.domains = domains
        self.factoring_attributes = factoring_attributes
        self.engine = engine
        self.shards = shards
        self.shard_policy = shard_policy
        self.shard_workers = shard_workers
        self.backend = backend
        self.aggregate = aggregate
        self.routing_tables: Dict[str, RoutingTable] = all_routing_tables(topology)
        self.spanning_trees: Dict[str, SpanningTree] = spanning_trees_for_publishers(topology)

    def tree_children(self, broker: str, root: str) -> List[str]:
        """Broker children of ``broker`` in the spanning tree of ``root``."""
        tree = self.spanning_trees.get(root)
        if tree is None:
            raise SimulationError(f"no spanning tree rooted at {root!r}")
        return [
            child
            for child in tree.children.get(broker, [])
            if child in self.topology and not self.topology.node(child).kind.is_client
        ]

    def repair_topology(self) -> TopologyRepair:
        """Incrementally repair spanning trees and routing tables after the
        topology was mutated (failure, recovery, join, leave).

        Every cached structure is patched rather than rebuilt: trees via
        :meth:`SpanningTree.repair`, tables via :meth:`RoutingTable.repair`.
        Brokers that appeared get fresh tables (and fresh trees when they
        host publishers); the report tells protocols what changed so they
        can limit mask/annotation rebuilds to affected brokers.
        """
        tree_changes: Dict[str, FrozenSet[str]] = {}
        for root, tree in self.spanning_trees.items():
            changed = tree.repair()
            if changed:
                tree_changes[root] = changed
        for publisher in self.topology.publishers():
            root = self.topology.broker_of(publisher)
            if root not in self.spanning_trees:
                tree = SpanningTree(self.topology, root, partial=True)
                self.spanning_trees[root] = tree
                tree_changes[root] = tree.covered
        routing_changes: Dict[str, FrozenSet[str]] = {}
        for broker, table in self.routing_tables.items():
            changed = table.repair()
            if changed:
                routing_changes[broker] = changed
        joined = tuple(
            broker
            for broker in self.topology.brokers()
            if broker not in self.routing_tables
        )
        for broker in joined:
            self.routing_tables[broker] = RoutingTable(self.topology, broker)
        return TopologyRepair(tree_changes, routing_changes, joined)


class RoutingProtocol(abc.ABC):
    """Decision logic for one multicast strategy."""

    #: Short name used in logs and experiment tables.
    name: str = "abstract"

    #: Whether the protocol implements the fault hooks below — the fault
    #: coordinator refuses to inject failures into protocols that don't.
    supports_faults: bool = False

    def __init__(self, context: ProtocolContext) -> None:
        self.context = context

    # ------------------------------------------------------------------
    # Fault hooks (see repro.sim.faults)

    def on_topology_repaired(self, repair: "TopologyRepair") -> List[str]:
        """React to a topology repair; returns the brokers whose routing
        state (masks/annotations) actually changed — those brokers are the
        candidates for a stale window with flood fallback."""
        raise SimulationError(
            f"protocol {self.name!r} does not support topology repair"
        )

    def set_stale(self, broker: str, stale: bool) -> None:
        """Mark a broker's annotations stale (repair known, annotations not
        yet rebuilt).  Protocols without an annotation concept ignore it."""

    def add_subscription(self, subscription: Subscription) -> None:
        """Register a subscription at runtime (thundering herds, joins)."""
        raise SimulationError(
            f"protocol {self.name!r} does not support runtime subscriptions"
        )

    def make_message(self, event: Event, root: str, publish_time_ticks: int = 0) -> SimMessage:
        """The initial message injected at the publishing broker."""
        return SimMessage(event, root, publish_time_ticks=publish_time_ticks)

    @abc.abstractmethod
    def handle(self, broker: str, message: SimMessage) -> Decision:
        """Decide what ``broker`` does with ``message``."""

    def handle_batch(self, broker: str, messages: Sequence[SimMessage]) -> List[Decision]:
        """Decide what ``broker`` does with each message of a batch.

        Decision ``i`` is exactly ``handle(broker, messages[i])``.  This base
        fallback loops; protocols whose matchers have real batch kernels
        (link matching, flooding) override it to amortize matching across
        the batch.
        """
        return [self.handle(broker, message) for message in messages]

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
