"""Chart 3 — "Performance of Matching" on the prototype broker.

The paper measures the prototype's pure matching algorithm: average matching
time per event against the number of subscriptions, "about 4ms for 25,000
subscribers" on a 200 MHz Pentium Pro.  Absolute times on modern hardware
under Python differ, but the *shape* — matching time growing sublinearly in
the subscription count — is the claim worth checking, so the table reports
both the measured milliseconds and the growth ratio between successive
subscription counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.broker.engine import MatchingEngine
from repro.experiments.tables import ExperimentTable
from repro.obs import metrics_output
from repro.workload.generators import EventGenerator, SubscriptionGenerator
from repro.workload.spec import CHART1_SPEC, WorkloadSpec


@dataclass(frozen=True)
class Chart3Config:
    """Knobs for the prototype matching-time measurement.

    The paper sweeps to 25,000 subscriptions; the default sweep is smaller
    for benchmark speed (pass the paper's counts for full scale).
    """

    spec: WorkloadSpec = CHART1_SPEC
    subscription_counts: Tuple[int, ...] = (1000, 5000, 10000, 25000)
    num_events: int = 200
    seed: int = 0
    use_factoring: bool = True
    engine: str = "compiled"
    #: Sharded-engine knobs (None/0 = engine defaults; ignored by others).
    shards: Optional[int] = None
    shard_policy: Optional[str] = None
    shard_workers: int = 0
    #: Kernel execution backend (None = engine default).
    backend: Optional[str] = None
    #: Compress the subscription set with the covering forest
    #: (:mod:`repro.matching.aggregation`) before compilation.
    aggregate: bool = False
    #: Optional path: write the global obs-registry JSON snapshot here.
    metrics_out: Optional[str] = None


def measure_matching_time(
    engine: MatchingEngine, events: List, repeats: int = 1
) -> Tuple[float, float, int]:
    """Return (avg ms per match, avg matches per event, avg steps).

    One untimed warmup pass brings the engine to steady state (factoring
    compaction, compiled-program lowering) before measurement: the paper's
    Chart 3 measures matching time, not one-time subscription processing.
    """
    total_matches = 0
    total_steps = 0
    for event in events:
        engine.match(event)
    start = time.perf_counter()
    for _ in range(repeats):
        for event in events:
            result = engine.match(event)
            total_matches += len(result.subscriptions)
            total_steps += result.steps
    elapsed = time.perf_counter() - start
    runs = repeats * len(events)
    return (
        (elapsed / runs) * 1000.0,
        total_matches / runs,
        total_steps // runs,
    )


def run_chart3(config: Chart3Config = Chart3Config()) -> ExperimentTable:
    """Regenerate Chart 3: average matching time vs subscription count."""
    with metrics_output(config.metrics_out):
        return _run_chart3(config)


def _run_chart3(config: Chart3Config) -> ExperimentTable:
    table = ExperimentTable(
        "Chart 3: prototype matching time vs number of subscriptions",
        [
            "subscriptions",
            "avg_match_ms",
            "avg_matches",
            "avg_steps",
            "growth_vs_prev",
        ],
    )
    spec = config.spec
    subscribers = [f"client{i:04d}" for i in range(100)]
    previous_ms: Optional[float] = None
    for count in config.subscription_counts:
        generator = SubscriptionGenerator(spec, seed=config.seed + count)
        subscriptions = generator.subscriptions_for(subscribers, count)
        engine = MatchingEngine(
            spec.schema(),
            domains=spec.domains(),
            factoring_attributes=(
                spec.factoring_attributes if config.use_factoring else None
            ),
            engine=config.engine,
            shards=config.shards,
            shard_policy=config.shard_policy,
            shard_workers=config.shard_workers,
            backend=config.backend,
            aggregate=config.aggregate,
        )
        for subscription in subscriptions:
            engine.matcher.insert(subscription)
        events = EventGenerator(spec, seed=config.seed + count + 1)
        sample = [events.event_for() for _ in range(config.num_events)]
        avg_ms, avg_matches, avg_steps = measure_matching_time(engine, sample)
        growth = (avg_ms / previous_ms) if previous_ms else 1.0
        table.add_row(count, avg_ms, avg_matches, avg_steps, growth)
        previous_ms = avg_ms
    return table
