"""Tabular results for experiment harnesses.

Every experiment returns an :class:`ExperimentTable` — column names plus
rows — with a plain-text formatter, so benchmarks and examples can print
the same rows the paper's charts plot without any plotting dependency.
"""

from __future__ import annotations

from typing import Any, List, Sequence


class ExperimentTable:
    """A titled table of experiment results."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[Any]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def format(self) -> str:
        """Fixed-width text rendering."""
        header = [str(c) for c in self.columns]
        body = [[_format_cell(value) for value in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for row in body:
            lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(header))))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ExperimentTable({self.title!r}, {len(self.rows)} rows)"


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
