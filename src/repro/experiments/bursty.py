"""Bursty-load study — the paper's stated future work.

Section 6: "since many publish/subscribe applications exhibit peak activity
periods, we are examining how our protocol performs with bursty message
loads."  This harness runs the Chart 1 setup under an ON/OFF (interrupted
Poisson) arrival process at the same long-run mean rate as a plain Poisson
run, for several burstiness factors, and reports queue buildup, delivery
latency and whether the network overloads — quantifying how much headroom
below the Poisson saturation point bursts consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.experiments.tables import ExperimentTable
from repro.obs import metrics_output
from repro.network.figures import figure6_topology
from repro.protocols.base import ProtocolContext
from repro.protocols.link_matching import LinkMatchingProtocol
from repro.sim.runner import NetworkSimulation
from repro.workload.generators import (
    EventGenerator,
    SubscriptionGenerator,
    figure6_region_of,
)
from repro.workload.spec import CHART1_SPEC, WorkloadSpec


@dataclass(frozen=True)
class BurstyConfig:
    spec: WorkloadSpec = CHART1_SPEC
    num_subscriptions: int = 300
    subscribers_per_broker: int = 3
    #: Aggregate mean publish rate (events/s) — pick below the Poisson
    #: saturation point so burstiness is the variable under test.
    mean_rate: float = 4000.0
    burstiness_factors: Tuple[float, ...] = (1.0, 3.0, 10.0)
    duration_s: float = 1.0
    on_mean_s: float = 0.05
    seed: int = 0
    engine: str = "compiled"
    #: Sharded-engine knobs (None/0 = engine defaults; ignored by others).
    shards: Optional[int] = None
    shard_policy: Optional[str] = None
    shard_workers: int = 0
    #: Kernel execution backend (None = engine default).
    backend: Optional[str] = None
    #: Compress the subscription set with the covering forest
    #: (:mod:`repro.matching.aggregation`) before compilation.
    aggregate: bool = False
    #: Optional path: write the global obs-registry JSON snapshot here.
    metrics_out: Optional[str] = None


def run_bursty(config: BurstyConfig = BurstyConfig()) -> ExperimentTable:
    """One row per burstiness factor (1.0 = plain Poisson)."""
    with metrics_output(config.metrics_out):
        return _run_bursty(config)


def _run_bursty(config: BurstyConfig) -> ExperimentTable:
    table = ExperimentTable(
        "Bursty loads: link matching at fixed mean rate, varying burstiness",
        [
            "burstiness",
            "published",
            "max_queue",
            "mean_latency_ms",
            "overloaded",
        ],
    )
    topology = figure6_topology(subscribers_per_broker=config.subscribers_per_broker)
    spec = config.spec
    generator = SubscriptionGenerator(spec, seed=config.seed, region_of=figure6_region_of)
    subscriptions = generator.subscriptions_for(
        topology.subscribers(), config.num_subscriptions
    )
    events = EventGenerator(spec, seed=config.seed + 1, region_of=figure6_region_of)
    context = ProtocolContext(
        topology,
        spec.schema(),
        subscriptions,
        domains=spec.domains(),
        factoring_attributes=spec.factoring_attributes,
        engine=config.engine,
        shards=config.shards,
        shard_policy=config.shard_policy,
        shard_workers=config.shard_workers,
        backend=config.backend,
        aggregate=config.aggregate,
    )
    protocol = LinkMatchingProtocol(context)
    publishers = topology.publishers()
    for burstiness in config.burstiness_factors:
        simulation = NetworkSimulation(
            topology,
            protocol,
            seed=config.seed,
            queue_sample_interval_ms=config.duration_s * 1000.0 / 100.0,
        )
        per_publisher = config.mean_rate / len(publishers)
        budget = int(per_publisher * config.duration_s) + 1
        for publisher in publishers:
            if burstiness <= 1.0:
                simulation.add_poisson_publisher(
                    publisher, per_publisher, events.factory_for(publisher), budget
                )
            else:
                simulation.add_bursty_publisher(
                    publisher,
                    per_publisher,
                    events.factory_for(publisher),
                    budget,
                    burstiness=burstiness,
                    on_mean_s=config.on_mean_s,
                )
        result = simulation.run(max_seconds=config.duration_s, drain=False)
        max_queue = max(stats.max_queue for stats in result.broker_stats.values())
        latency = result.mean_latency_ms()
        table.add_row(
            burstiness,
            result.published_events,
            max_queue,
            latency if latency is not None else "",
            result.is_overloaded,
        )
    return table
