"""Terminal (ASCII) rendering of experiment series.

The paper presents its evaluation as line charts; this module renders the
same series as dependency-free ASCII plots so the CLI and EXPERIMENTS.md can
show shapes, not just tables.  One glyph per series, points interpolated
onto a character grid, log-scale option for saturation rates.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

#: Glyphs assigned to series in declaration order.
SERIES_GLYPHS = "*o+x#@%&"


class Series:
    """One named line: sorted (x, y) points."""

    def __init__(self, name: str, points: Sequence[Tuple[float, float]]) -> None:
        self.name = name
        self.points = sorted((float(x), float(y)) for x, y in points)

    def __repr__(self) -> str:
        return f"Series({self.name!r}, {len(self.points)} points)"


def render_chart(
    title: str,
    series: Sequence[Series],
    *,
    width: int = 64,
    height: int = 16,
    y_log: bool = False,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render series onto a character grid with axes and a legend."""
    drawable = [s for s in series if s.points]
    if not drawable:
        return f"{title}\n(no data)"
    xs = [x for s in drawable for x, _y in s.points]
    ys = [y for s in drawable for _x, y in s.points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if y_log:
        if y_low <= 0:
            raise ValueError("log scale requires positive y values")
        y_low, y_high = math.log10(y_low), math.log10(y_high)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, glyph: str) -> None:
        if y_log:
            y = math.log10(y)
        column = round((x - x_low) / x_span * (width - 1))
        row = height - 1 - round((y - y_low) / y_span * (height - 1))
        grid[row][column] = glyph

    for index, one_series in enumerate(drawable):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        previous: Optional[Tuple[float, float]] = None
        for x, y in one_series.points:
            if previous is not None:
                _draw_segment(plot, previous, (x, y), glyph, steps=width)
            plot(x, y, glyph)
            previous = (x, y)

    def y_tick(value: float) -> str:
        real = 10**value if y_log else value
        return f"{real:>10.4g}"

    lines = [title]
    if y_label:
        lines.append(f"  {y_label}{' (log scale)' if y_log else ''}")
    for row_index, row in enumerate(grid):
        fraction = 1.0 - row_index / (height - 1) if height > 1 else 1.0
        tick = (
            y_tick(y_low + fraction * y_span)
            if row_index in (0, height // 2, height - 1)
            else " " * 10
        )
        lines.append(f"{tick} |{''.join(row)}")
    lines.append(" " * 10 + "+" + "-" * width)
    left = f"{x_low:.4g}"
    right = f"{x_high:.4g}"
    middle = x_label or ""
    padding = max(1, width - len(left) - len(right) - len(middle))
    lines.append(
        " " * 11 + left + " " * (padding // 2) + middle + " " * (padding - padding // 2) + right
    )
    legend = "   ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]} {s.name}" for i, s in enumerate(drawable)
    )
    lines.append(f"  legend: {legend}")
    return "\n".join(lines)


def _draw_segment(plot, start, end, glyph, steps: int) -> None:
    """Linear interpolation between two points, in data space."""
    (x0, y0), (x1, y1) = start, end
    for i in range(1, steps):
        t = i / steps
        plot(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t, glyph)


def chart1_series(table) -> List[Series]:
    """Build Chart 1 series (one per protocol) from its ExperimentTable."""
    grouped: Dict[str, List[Tuple[float, float]]] = {}
    for count, protocol, rate, _probes in table.rows:
        grouped.setdefault(protocol, []).append((count, rate))
    return [Series(name, points) for name, points in sorted(grouped.items())]


def chart2_series(table) -> List[Series]:
    """Build Chart 2 series (LM per hop count + centralized)."""
    series: List[Series] = []
    for column in table.columns[1:]:
        points = [
            (row[0], value)
            for row, value in zip(table.rows, table.column(column))
            if value != ""
        ]
        series.append(Series(column, points))
    return series


def chart3_series(table) -> List[Series]:
    return [
        Series(
            "avg_match_ms",
            list(zip(table.column("subscriptions"), table.column("avg_match_ms"))),
        )
    ]
