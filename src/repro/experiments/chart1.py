"""Chart 1 — "Saturation points".

For each subscription count, find the aggregate event publish rate at which
the Figure 6 broker network overloads, under flooding and under link
matching.  The paper's claim: "a broker network running the flooding
protocol saturates at significantly lower event publish rates than the link
matching protocol for any number of subscriptions", with the gap largest
when events are selective.

Paper parameters (``CHART1_SPEC``): 10 attributes, 2 factored, 5 values per
attribute, first-attribute non-``*`` probability 0.98 decaying at 85%, 500
tracked events, Zipf values, locality of interest, Poisson arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.experiments.tables import ExperimentTable
from repro.obs import metrics_output
from repro.network.figures import figure6_topology
from repro.network.topology import Topology
from repro.protocols.base import ProtocolContext, RoutingProtocol
from repro.protocols.flooding import FloodingProtocol
from repro.protocols.link_matching import LinkMatchingProtocol
from repro.protocols.match_first import MatchFirstProtocol
from repro.sim.runner import NetworkSimulation
from repro.sim.saturation import SaturationSearchResult, find_saturation_rate
from repro.workload.generators import (
    EventGenerator,
    SubscriptionGenerator,
    figure6_region_of,
)
from repro.workload.spec import CHART1_SPEC, WorkloadSpec


@dataclass(frozen=True)
class Chart1Config:
    """Knobs for the Chart 1 run.

    ``subscription_counts`` defaults to a scaled-down sweep so the benchmark
    suite stays fast; the paper's sweep went to several thousand (pass
    larger counts to match it — nothing else changes).
    """

    spec: WorkloadSpec = CHART1_SPEC
    subscription_counts: Tuple[int, ...] = (100, 250, 500, 1000)
    subscribers_per_broker: int = 3
    probe_duration_s: float = 0.5
    abort_queue_length: int = 100
    initial_rate: float = 500.0
    max_rate: float = 5e5
    seed: int = 0
    include_match_first: bool = False
    engine: str = "compiled"
    #: Sharded-engine knobs (None/0 = engine defaults; ignored by others).
    shards: Optional[int] = None
    shard_policy: Optional[str] = None
    shard_workers: int = 0
    #: Kernel execution backend (None = engine default).
    backend: Optional[str] = None
    #: Compress the subscription set with the covering forest
    #: (:mod:`repro.matching.aggregation`) before compilation.
    aggregate: bool = False
    #: Optional path: write the global obs-registry JSON snapshot here.
    metrics_out: Optional[str] = None


def _protocols(context: ProtocolContext, config: Chart1Config) -> List[RoutingProtocol]:
    protocols: List[RoutingProtocol] = [
        FloodingProtocol(context),
        LinkMatchingProtocol(context),
    ]
    if config.include_match_first:
        protocols.append(MatchFirstProtocol(context))
    return protocols


def saturation_for(
    topology: Topology,
    protocol: RoutingProtocol,
    event_generator: EventGenerator,
    config: Chart1Config,
) -> SaturationSearchResult:
    """Find one protocol's saturation rate on one workload."""
    publishers = topology.publishers()

    def probe(rate: float):
        simulation = NetworkSimulation(
            topology,
            protocol,
            seed=config.seed,
            queue_sample_interval_ms=config.probe_duration_s * 1000.0 / 50.0,
        )
        per_publisher = rate / len(publishers)
        for publisher in publishers:
            simulation.add_poisson_publisher(
                publisher,
                per_publisher,
                event_generator.factory_for(publisher),
                int(per_publisher * config.probe_duration_s) + 1,
            )
        return simulation.run(
            max_seconds=config.probe_duration_s,
            drain=False,
            abort_on_queue=config.abort_queue_length,
        )

    return find_saturation_rate(
        probe, initial_rate=config.initial_rate, max_rate=config.max_rate
    )


def run_chart1(config: Chart1Config = Chart1Config()) -> ExperimentTable:
    """Regenerate Chart 1's series (one row per protocol × subscription count)."""
    with metrics_output(config.metrics_out):
        return _run_chart1(config)


def _run_chart1(config: Chart1Config) -> ExperimentTable:
    table = ExperimentTable(
        "Chart 1: saturation publish rate (events/s) vs number of subscriptions",
        ["subscriptions", "protocol", "saturation_rate_eps", "probes"],
    )
    topology = figure6_topology(subscribers_per_broker=config.subscribers_per_broker)
    spec = config.spec
    for count in config.subscription_counts:
        generator = SubscriptionGenerator(
            spec, seed=config.seed + count, region_of=figure6_region_of
        )
        subscriptions = generator.subscriptions_for(topology.subscribers(), count)
        events = EventGenerator(
            spec, seed=config.seed + count + 1, region_of=figure6_region_of
        )
        context = ProtocolContext(
            topology,
            spec.schema(),
            subscriptions,
            domains=spec.domains(),
            factoring_attributes=spec.factoring_attributes,
            engine=config.engine,
            shards=config.shards,
            shard_policy=config.shard_policy,
            shard_workers=config.shard_workers,
            backend=config.backend,
            aggregate=config.aggregate,
        )
        for protocol in _protocols(context, config):
            result = saturation_for(topology, protocol, events, config)
            table.add_row(count, protocol.name, result.saturation_rate, len(result.probes))
    return table
