"""Chart 2 — "Matching time" (cumulative matching steps by hop count).

For the link-matching algorithm the per-event cost is "the sum of the times
for all the partial matches at intermediate brokers along the way from
publisher to subscriber".  Chart 2 plots, against the number of
subscriptions, the average cumulative matching *steps* for deliveries 1
through 6 broker-hops away, next to the steps of the centralized (non-trit)
algorithm run once at the publishing broker.

Expected shape (paper): cumulative steps grow with hop count; up to ~4 hops
link matching costs no more than centralized; beyond that it costs more but
the per-step cost (microseconds) is negligible against WAN latencies, and
the slopes indicate centralized eventually overtakes link matching for very
large subscription counts.

Paper parameters (``CHART2_SPEC``): 10 attributes, 3 factored, 3 values per
attribute, non-``*`` probability 0.98 decaying at 82%, 1000 events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.fabric import ContentRoutedNetwork
from repro.experiments.tables import ExperimentTable
from repro.obs import metrics_output
from repro.network.figures import figure6_topology
from repro.workload.generators import (
    EventGenerator,
    SubscriptionGenerator,
    figure6_region_of,
)
from repro.workload.spec import CHART2_SPEC, WorkloadSpec


@dataclass(frozen=True)
class Chart2Config:
    """Knobs for the Chart 2 run (defaults scaled down from the paper's
    2000-10000 subscriptions / 1000 events for benchmark speed; pass the
    paper's values to reproduce at full scale)."""

    spec: WorkloadSpec = CHART2_SPEC
    subscription_counts: Tuple[int, ...] = (500, 1000, 2000)
    num_events: int = 100
    subscribers_per_broker: int = 3
    max_hops: int = 6
    seed: int = 0
    use_factoring: bool = True
    engine: str = "compiled"
    #: Sharded-engine knobs (None/0 = engine defaults; ignored by others).
    shards: Optional[int] = None
    shard_policy: Optional[str] = None
    shard_workers: int = 0
    #: Kernel execution backend (None = engine default).
    backend: Optional[str] = None
    #: Compress the subscription set with the covering forest
    #: (:mod:`repro.matching.aggregation`) before compilation.
    aggregate: bool = False
    #: Optional path: write the global obs-registry JSON snapshot here.
    metrics_out: Optional[str] = None


@dataclass
class Chart2Point:
    """Aggregated measurements for one subscription count."""

    subscriptions: int
    #: hop count -> (mean cumulative link-matching steps, deliveries counted)
    steps_by_hop: Dict[int, Tuple[float, int]]
    centralized_steps: float


def measure_chart2_point(
    network: ContentRoutedNetwork,
    events: EventGenerator,
    publishers: List[str],
    num_events: int,
    max_hops: int,
) -> Tuple[Dict[int, Tuple[float, int]], float]:
    """Publish ``num_events`` per publisher; collect cumulative steps per hop
    plus the centralized matcher's steps at the publishing broker."""
    step_totals: Dict[int, int] = {}
    step_counts: Dict[int, int] = {}
    centralized_total = 0
    published = 0
    for index in range(num_events):
        publisher = publishers[index % len(publishers)]
        event = events.event_for(publisher)
        trace = network.publish(publisher, event)
        centralized_total += network.centralized_match(publisher, event).steps
        published += 1
        for client, hop in trace.deliveries.items():
            if hop > max_hops:
                continue
            cumulative = trace.cumulative_steps_to(client)
            step_totals[hop] = step_totals.get(hop, 0) + cumulative
            step_counts[hop] = step_counts.get(hop, 0) + 1
    steps_by_hop = {
        hop: (step_totals[hop] / step_counts[hop], step_counts[hop])
        for hop in sorted(step_totals)
    }
    return steps_by_hop, centralized_total / max(1, published)


def run_chart2(config: Chart2Config = Chart2Config()) -> ExperimentTable:
    """Regenerate Chart 2's series.

    Columns: subscription count, then ``lm_1_hop`` .. ``lm_<max>_hops``
    (mean cumulative steps; blank when no delivery at that distance), then
    ``centralized``.
    """
    with metrics_output(config.metrics_out):
        return _run_chart2(config)


def _run_chart2(config: Chart2Config) -> ExperimentTable:
    columns = ["subscriptions"]
    columns += [f"lm_{h}_hop{'s' if h > 1 else ''}" for h in range(1, config.max_hops + 1)]
    columns.append("centralized")
    table = ExperimentTable(
        "Chart 2: cumulative matching steps per event vs number of subscriptions",
        columns,
    )
    topology = figure6_topology(subscribers_per_broker=config.subscribers_per_broker)
    publishers = topology.publishers()
    spec = config.spec
    for count in config.subscription_counts:
        generator = SubscriptionGenerator(
            spec, seed=config.seed + count, region_of=figure6_region_of
        )
        subscriptions = generator.subscriptions_for(topology.subscribers(), count)
        network = ContentRoutedNetwork(
            topology,
            spec.schema(),
            domains=spec.domains(),
            factoring_attributes=(
                spec.factoring_attributes if config.use_factoring else None
            ),
            engine=config.engine,
            shards=config.shards,
            shard_policy=config.shard_policy,
            shard_workers=config.shard_workers,
            backend=config.backend,
            aggregate=config.aggregate,
        )
        for subscription in subscriptions:
            network.subscribe(subscription.subscriber, subscription.predicate)
        events = EventGenerator(
            spec, seed=config.seed + count + 1, region_of=figure6_region_of
        )
        steps_by_hop, centralized = measure_chart2_point(
            network, events, publishers, config.num_events, config.max_hops
        )
        row: List[object] = [count]
        for hop in range(1, config.max_hops + 1):
            entry = steps_by_hop.get(hop)
            row.append(entry[0] if entry is not None else "")
        row.append(centralized)
        table.add_row(*row)
    return table
