"""Experiment harnesses that regenerate every table and figure of the
paper's evaluation (Charts 1-3, the throughput claim), plus the future-work
bursty-load study and ablations of the design choices."""

from repro.experiments.ablations import (
    AblationConfig,
    run_delayed_branching_ablation,
    run_factoring_ablation,
    run_ordering_ablation,
    run_range_workload_ablation,
    run_virtual_link_ablation,
)
from repro.experiments.baselines import BaselineConfig, run_baseline_comparison
from repro.experiments.bursty import BurstyConfig, run_bursty
from repro.experiments.chart1 import Chart1Config, run_chart1, saturation_for
from repro.experiments.chart2 import Chart2Config, measure_chart2_point, run_chart2
from repro.experiments.chart3 import Chart3Config, measure_matching_time, run_chart3
from repro.experiments.tables import ExperimentTable
from repro.experiments.throughput import ThroughputConfig, run_throughput

__all__ = [
    "AblationConfig",
    "BaselineConfig",
    "BurstyConfig",
    "Chart1Config",
    "Chart2Config",
    "Chart3Config",
    "ExperimentTable",
    "ThroughputConfig",
    "measure_chart2_point",
    "measure_matching_time",
    "run_baseline_comparison",
    "run_bursty",
    "run_chart1",
    "run_chart2",
    "run_chart3",
    "run_delayed_branching_ablation",
    "run_factoring_ablation",
    "run_ordering_ablation",
    "run_range_workload_ablation",
    "run_throughput",
    "run_virtual_link_ablation",
    "saturation_for",
]
