"""Network-loading comparison of all three protocols (Section 5's argument).

Chart 1 compares saturation points for flooding vs link matching; the
paper's related-work section argues the *other* baseline, match-first, fails
differently — "in a large system with thousands of potential destinations,
the increase in message size makes the approach impractical".  This study
quantifies both failure modes on one table: for each subscription count, a
fixed-rate run per protocol reporting broker messages processed, link
messages and bytes crossed, header bytes per useful delivery, and wasted
deliveries.

Expected shapes:

* flooding processes every event at every broker (max messages) and wastes
  most client deliveries;
* match-first matches link matching on message *counts* (one copy per link)
  but its bytes grow with the destination-list length — the per-useful-
  delivery header overhead rises with the subscription count;
* link matching carries no lists and touches only interested brokers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.experiments.tables import ExperimentTable
from repro.network.figures import figure6_topology
from repro.protocols.base import ProtocolContext, RoutingProtocol
from repro.protocols.flooding import FloodingProtocol
from repro.protocols.link_matching import LinkMatchingProtocol
from repro.protocols.match_first import MatchFirstProtocol
from repro.sim.runner import NetworkSimulation
from repro.workload.generators import (
    EventGenerator,
    SubscriptionGenerator,
    figure6_region_of,
)
from repro.workload.spec import CHART1_SPEC, WorkloadSpec


@dataclass(frozen=True)
class BaselineConfig:
    spec: WorkloadSpec = CHART1_SPEC
    subscription_counts: Tuple[int, ...] = (100, 400, 1600)
    subscribers_per_broker: int = 3
    publish_rate: float = 1500.0
    num_events_per_publisher: int = 150
    seed: int = 0
    engine: str = "compiled"
    #: Sharded-engine knobs (None/0 = engine defaults; ignored by others).
    shards: Optional[int] = None
    shard_policy: Optional[str] = None
    shard_workers: int = 0
    #: Kernel execution backend (None = engine default).
    backend: Optional[str] = None
    #: Compress the subscription set with the covering forest
    #: (:mod:`repro.matching.aggregation`) before compilation.
    aggregate: bool = False


def run_baseline_comparison(config: BaselineConfig = BaselineConfig()) -> ExperimentTable:
    """One row per (subscription count, protocol)."""
    table = ExperimentTable(
        "Network loading: link matching vs flooding vs match-first "
        f"(fixed {config.publish_rate:.0f} events/s)",
        [
            "subscriptions",
            "protocol",
            "broker_msgs",
            "link_msgs",
            "link_kbytes",
            "hdr_bytes_per_delivery",
            "wasted_deliveries",
        ],
    )
    topology = figure6_topology(subscribers_per_broker=config.subscribers_per_broker)
    spec = config.spec
    publishers = topology.publishers()
    for count in config.subscription_counts:
        generator = SubscriptionGenerator(
            spec, seed=config.seed + count, region_of=figure6_region_of
        )
        subscriptions = generator.subscriptions_for(topology.subscribers(), count)
        events = EventGenerator(
            spec, seed=config.seed + count + 1, region_of=figure6_region_of
        )
        context = ProtocolContext(
            topology,
            spec.schema(),
            subscriptions,
            domains=spec.domains(),
            factoring_attributes=spec.factoring_attributes,
            engine=config.engine,
            shards=config.shards,
            shard_policy=config.shard_policy,
            shard_workers=config.shard_workers,
            backend=config.backend,
            aggregate=config.aggregate,
        )
        protocols: List[RoutingProtocol] = [
            LinkMatchingProtocol(context),
            FloodingProtocol(context),
            MatchFirstProtocol(context),
        ]
        for protocol in protocols:
            simulation = NetworkSimulation(topology, protocol, seed=config.seed)
            for publisher in publishers:
                simulation.add_poisson_publisher(
                    publisher,
                    config.publish_rate / len(publishers),
                    events.factory_for(publisher),
                    config.num_events_per_publisher,
                )
            result = simulation.run()
            useful = max(1, len(result.matched_deliveries))
            # Header overhead beyond the bare event, amortized per useful
            # delivery — the match-first "message size" cost, isolated.
            base = protocol.make_message(events.event_for(), publishers[0])
            bare_bytes = base.wire_size_bytes
            header_overhead = result.total_link_bytes - bare_bytes * result.total_link_messages
            table.add_row(
                count,
                protocol.name,
                result.total_broker_messages,
                result.total_link_messages,
                result.total_link_bytes / 1024.0,
                header_overhead / useful,
                result.wasted_deliveries,
            )
    return table
