"""Broker throughput — the paper's "up to 14,000 events/sec" claim.

Section 4.2: on a 200 MHz Pentium Pro broker, "the current implementation of
the broker can deliver up to 14,000 events/sec.  [...] In fact, our matching
algorithms are so efficient that the transport system and network costs of a
broker outweigh the cost of matching at a broker."

This harness pumps events through a real single-broker :class:`BrokerNode`
over the in-memory transport (full pipeline: marshalling, framing, protocol
dispatch, matching, per-client logs) and separately measures the pure
matching rate, so the table shows both the achievable events/sec and the
matching-vs-transport cost split the paper comments on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.broker.client import BrokerClient
from repro.broker.engine import MatchingEngine
from repro.broker.node import BrokerNetworkConfig, BrokerNode
from repro.broker.transport import InMemoryTransport
from repro.experiments.tables import ExperimentTable
from repro.obs import metrics_output
from repro.network.topology import NodeKind, Topology
from repro.workload.generators import EventGenerator, SubscriptionGenerator
from repro.workload.spec import WorkloadSpec


@dataclass(frozen=True)
class ThroughputConfig:
    spec: WorkloadSpec = WorkloadSpec(
        num_attributes=10, values_per_attribute=5, factoring_levels=2, locality_regions=1
    )
    subscription_counts: Tuple[int, ...] = (10, 100, 1000)
    num_subscriber_clients: int = 10
    num_events: int = 2000
    seed: int = 0
    engine: str = "compiled"
    #: Sharded-engine knobs (None/0 = engine defaults; ignored by others).
    shards: Optional[int] = None
    shard_policy: Optional[str] = None
    shard_workers: int = 0
    #: Kernel execution backend (None = engine default).
    backend: Optional[str] = None
    #: Compress the subscription set with the covering forest
    #: (:mod:`repro.matching.aggregation`) before compilation.
    aggregate: bool = False
    #: Optional path: write the global obs-registry JSON snapshot here.
    metrics_out: Optional[str] = None


def _single_broker_topology(num_subscribers: int) -> Topology:
    topology = Topology()
    topology.add_broker("B0")
    for index in range(num_subscribers):
        topology.add_client(f"sub{index:02d}", "B0")
    topology.add_client("pub", "B0", kind=NodeKind.PUBLISHER)
    return topology


def run_throughput(config: ThroughputConfig = ThroughputConfig()) -> ExperimentTable:
    """Measure full-pipeline events/sec and the matching share of the cost."""
    with metrics_output(config.metrics_out):
        return _run_throughput(config)


def _run_throughput(config: ThroughputConfig) -> ExperimentTable:
    table = ExperimentTable(
        "Broker throughput (single prototype broker, in-memory transport)",
        [
            "subscriptions",
            "events_per_sec",
            "deliveries_per_sec",
            "match_only_events_per_sec",
            "matching_cost_share",
        ],
    )
    spec = config.spec
    for count in config.subscription_counts:
        topology = _single_broker_topology(config.num_subscriber_clients)
        broker_config = BrokerNetworkConfig(
            topology,
            spec.schema(),
            domains=spec.domains(),
            factoring_attributes=spec.factoring_attributes,
            engine=config.engine,
            shards=config.shards,
            shard_policy=config.shard_policy,
            shard_workers=config.shard_workers,
            backend=config.backend,
            aggregate=config.aggregate,
        )
        transport = InMemoryTransport()
        node = BrokerNode(broker_config, "B0", transport, {"B0": "mem://B0"})
        node.start()
        subscribers = topology.subscribers()
        clients = [
            BrokerClient(name, spec.schema(), transport, "mem://B0", pump=transport.pump)
            for name in subscribers
        ]
        publisher = BrokerClient("pub", spec.schema(), transport, "mem://B0", pump=transport.pump)
        for client in clients + [publisher]:
            client.connect()
        transport.pump()
        generator = SubscriptionGenerator(spec, seed=config.seed + count)
        for index in range(count):
            subscriber = clients[index % len(clients)]
            predicate = generator.predicate_for(subscriber.name)
            subscriber.subscribe_and_wait(predicate.describe())
        events = EventGenerator(spec, seed=config.seed + count + 1)
        sample = [events.event_for("pub") for _ in range(config.num_events)]

        start = time.perf_counter()
        for event in sample:
            publisher.publish(event)
            transport.pump()
        elapsed = time.perf_counter() - start
        deliveries = sum(len(c.received_events) for c in clients)

        # Pure matching rate on an identical engine, for the cost split.
        engine = MatchingEngine(
            spec.schema(),
            domains=spec.domains(),
            factoring_attributes=spec.factoring_attributes,
            engine=config.engine,
            shards=config.shards,
            shard_policy=config.shard_policy,
            shard_workers=config.shard_workers,
            backend=config.backend,
            aggregate=config.aggregate,
        )
        for subscription in node.router.matcher.subscriptions:
            engine.matcher.insert(subscription)
        for event in sample:
            engine.match(event)  # steady state: compaction + program lowering
        match_start = time.perf_counter()
        for event in sample:
            engine.match(event)
        match_elapsed = time.perf_counter() - match_start

        events_per_sec = config.num_events / elapsed
        match_only_rate = config.num_events / match_elapsed if match_elapsed else float("inf")
        table.add_row(
            count,
            events_per_sec,
            deliveries / elapsed,
            match_only_rate,
            match_elapsed / elapsed,
        )
        node.stop()
    return table
