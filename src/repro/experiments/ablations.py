"""Ablations of the design choices DESIGN.md calls out.

Three studies, each isolating one Section 2.1 / Section 3 mechanism:

* **Factoring levels** — matching steps and tree size as the number of index
  attributes varies (0 = plain PST), on the Chart 1 workload.
* **Attribute ordering** — the paper's fewest-don't-cares heuristic against
  declaration order and its reverse.
* **Delayed branching** — parallel-tree search vs the deterministic search
  DAG: steps per match and structure size (the time/space trade).
* **Virtual links** — how many physical links the Figure 6 topology (with
  its lateral links) actually needs to split, justifying footnote 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.masks import VirtualLinkTable
from repro.experiments.tables import ExperimentTable
from repro.obs import metrics_output
from repro.matching.optimizations import FactoredMatcher, SearchDag
from repro.matching.ordering import (
    declaration_order,
    order_by_fewest_dont_cares,
    reverse_declaration_order,
)
from repro.matching.pst import ParallelSearchTree
from repro.network.figures import figure6_topology
from repro.network.paths import all_routing_tables
from repro.network.spanning import spanning_trees_for_publishers
from repro.workload.generators import EventGenerator, SubscriptionGenerator
from repro.workload.spec import CHART1_SPEC, CHART2_SPEC, WorkloadSpec


@dataclass(frozen=True)
class AblationConfig:
    spec: WorkloadSpec = CHART1_SPEC
    num_subscriptions: int = 2000
    num_events: int = 300
    seed: int = 0
    #: Optional path: write the global obs-registry JSON snapshot here
    #: (honored by the config-taking ablations; the CLI flag covers all).
    metrics_out: Optional[str] = None


def _workload(config: AblationConfig) -> Tuple[List, List]:
    generator = SubscriptionGenerator(config.spec, seed=config.seed)
    subscribers = [f"client{i:04d}" for i in range(100)]
    subscriptions = generator.subscriptions_for(subscribers, config.num_subscriptions)
    events = EventGenerator(config.spec, seed=config.seed + 1)
    sample = [events.event_for() for _ in range(config.num_events)]
    return subscriptions, sample


def run_factoring_ablation(config: AblationConfig = AblationConfig()) -> ExperimentTable:
    """Matching steps and structure size per number of factored attributes."""
    with metrics_output(config.metrics_out):
        return _run_factoring_ablation(config)


def _run_factoring_ablation(config: AblationConfig) -> ExperimentTable:
    table = ExperimentTable(
        "Ablation: factoring levels (Chart 1 workload)",
        ["factoring_levels", "mean_steps", "sub_trees", "total_nodes"],
    )
    spec = config.spec
    subscriptions, sample = _workload(config)
    max_levels = min(4, spec.num_attributes - 1)
    for levels in range(0, max_levels + 1):
        if levels == 0:
            tree = ParallelSearchTree(spec.schema(), domains=spec.domains())
            for subscription in subscriptions:
                tree.insert(subscription)
            tree.eliminate_trivial_tests()
            steps = sum(tree.match(event).steps for event in sample) / len(sample)
            table.add_row(0, steps, 1, tree.node_count())
            continue
        matcher = FactoredMatcher(
            spec.schema(), spec.attribute_names[:levels], spec.domains()
        )
        for subscription in subscriptions:
            matcher.insert(subscription)
        steps = sum(matcher.match(event).steps for event in sample) / len(sample)
        total_nodes = sum(tree.node_count() for _key, tree in matcher.trees())
        table.add_row(levels, steps, len(dict(matcher.trees())), total_nodes)
    return table


def run_ordering_ablation(config: AblationConfig = AblationConfig()) -> ExperimentTable:
    """The paper's ordering heuristic vs declaration order vs its reverse.

    The synthetic workload constrains early attributes most, so declaration
    order is already near-optimal and the reversed order is the worst case —
    the heuristic should track the former and beat the latter.
    """
    with metrics_output(config.metrics_out):
        return _run_ordering_ablation(config)


def _run_ordering_ablation(config: AblationConfig) -> ExperimentTable:
    table = ExperimentTable(
        "Ablation: PST attribute ordering",
        ["ordering", "mean_steps", "nodes"],
    )
    spec = config.spec
    subscriptions, sample = _workload(config)
    predicates = [s.predicate for s in subscriptions]
    orders = [
        ("fewest-dont-cares", order_by_fewest_dont_cares(spec.schema(), predicates)),
        ("declaration", declaration_order(spec.schema())),
        ("reverse", reverse_declaration_order(spec.schema())),
    ]
    for name, order in orders:
        tree = ParallelSearchTree(
            spec.schema(), attribute_order=order, domains=spec.domains()
        )
        for subscription in subscriptions:
            tree.insert(subscription)
        tree.eliminate_trivial_tests()
        steps = sum(tree.match(event).steps for event in sample) / len(sample)
        table.add_row(name, steps, tree.node_count())
    return table


def run_delayed_branching_ablation(
    config: AblationConfig = AblationConfig(spec=CHART2_SPEC, num_subscriptions=1000),
) -> ExperimentTable:
    """Parallel search tree vs the delayed-branching search DAG."""
    table = ExperimentTable(
        "Ablation: delayed branching (tree vs search DAG)",
        ["structure", "mean_steps", "nodes"],
    )
    spec = config.spec
    subscriptions, sample = _workload(config)
    tree = ParallelSearchTree(spec.schema(), domains=spec.domains())
    for subscription in subscriptions:
        tree.insert(subscription)
    tree.eliminate_trivial_tests()
    tree_steps = sum(tree.match(event).steps for event in sample) / len(sample)
    table.add_row("parallel search tree", tree_steps, tree.node_count())
    dag = SearchDag(tree)
    dag_steps = sum(dag.match(event).steps for event in sample) / len(sample)
    table.add_row("search DAG", dag_steps, dag.node_count())
    return table


def run_range_workload_ablation(
    config: AblationConfig = AblationConfig(),
) -> ExperimentTable:
    """Equality-only vs mixed vs range-heavy subscription workloads.

    Range tests are coarser filters (a one-sided bound accepts a large slice
    of the domain), so selectivity rises sharply with the range share; the
    PST absorbs them as linearly scanned range branches, so steps rise too —
    the quantified version of why the paper's simulations stick to equality
    tests for their selective-workload claims.
    """
    from dataclasses import replace

    table = ExperimentTable(
        "Ablation: range-test share in the subscription workload",
        ["range_probability", "mean_steps", "mean_matches", "nodes"],
    )
    for range_probability in (0.0, 0.25, 0.5, 1.0):
        spec = replace(config.spec, range_probability=range_probability)
        scoped = AblationConfig(
            spec=spec,
            num_subscriptions=config.num_subscriptions,
            num_events=config.num_events,
            seed=config.seed,
        )
        subscriptions, sample = _workload(scoped)
        tree = ParallelSearchTree(spec.schema(), domains=spec.domains())
        for subscription in subscriptions:
            tree.insert(subscription)
        tree.eliminate_trivial_tests()
        steps = sum(tree.match(event).steps for event in sample) / len(sample)
        matches = sum(
            len(tree.match(event).subscriptions) for event in sample
        ) / len(sample)
        table.add_row(range_probability, steps, matches, tree.node_count())
    return table


def run_virtual_link_ablation(subscribers_per_broker: int = 3) -> ExperimentTable:
    """Count link splits on Figure 6 with and without lateral links."""
    table = ExperimentTable(
        "Ablation: virtual links (footnote 1) on the Figure 6 topology",
        ["lateral_links", "brokers_with_splits", "total_virtual_links", "physical_links"],
    )
    for laterals, label in ((None, "default"), ((), "none")):
        topology = figure6_topology(
            subscribers_per_broker=subscribers_per_broker, lateral_links=laterals
        )
        routing = all_routing_tables(topology)
        trees = spanning_trees_for_publishers(topology)
        split_brokers = 0
        virtual_total = 0
        physical_total = 0
        for broker in topology.brokers():
            links_table = VirtualLinkTable(topology, broker, routing[broker], trees)
            if links_table.split_count:
                split_brokers += 1
            virtual_total += links_table.num_links
            physical_total += topology.degree(broker)
        table.add_row(label, split_brokers, virtual_total, physical_total)
    return table
